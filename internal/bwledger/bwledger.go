// Package bwledger is the link-level bandwidth ledger: an epoch-windowed
// account of wire bytes per (host, peer) link and message kind, joined
// at window close against the prediction forest's per-link bandwidth so
// each window reports actual bytes/sec vs predicted capacity and flags
// utilization-ratio violations.
//
// The transports record into the ledger on every delivery (and, for TCP,
// on every framed send), so the hot path is deliberately cheap: one
// read-locked map lookup and a handful of atomic adds per message, no
// allocation once a link is tracked. Cardinality is bounded: at most
// TopK links are tracked per window, maintained space-saving style — a
// new link arriving at capacity evicts the currently smallest tracked
// link into a per-kind "other" bucket — so per-link numbers are
// approximate heavy hitters while the per-kind and global totals stay
// exact (tracked + other always reconciles with the transports'
// delivered counters).
//
// The ledger never reads a clock. Window boundaries are driven by the
// caller (the runtime's monitor rolls on its logical tick clock, the
// simulation harness rolls at phase boundaries), which keeps windowing
// deterministic under the repository's injected-clock policy.
package bwledger

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bwcluster/internal/telemetry"
)

// Defaults used by New for non-positive Config fields.
const (
	// DefaultTopK is the tracked-link bound per window.
	DefaultTopK = 64
	// DefaultWindows is how many completed windows the ledger retains.
	DefaultWindows = 8
	// DefaultThreshold is the utilization ratio (actual bits/sec over
	// predicted bits/sec) at which a link counts as violating.
	DefaultThreshold = 1.0
)

// maxKinds bounds the distinct message-kind labels one ledger accepts;
// the wire protocol has eight, so the bound is never hit in practice and
// overflow kinds fold into the last slot.
const maxKinds = 16

// AnomalyBandwidth is the flight-recorder anomaly kind fired when a
// window closes with a link over its utilization threshold.
const AnomalyBandwidth = "bandwidth_violation"

// Config parameterizes a Ledger; zero values take the defaults above.
type Config struct {
	// TopK bounds the number of links tracked per window.
	TopK int
	// Windows bounds the completed-window ring.
	Windows int
	// Threshold is the utilization ratio at or above which a link is
	// flagged as violating its predicted bandwidth.
	Threshold float64
}

// KindTotal is one message kind's byte and message count.
type KindTotal struct {
	Kind     string `json:"kind"`
	Bytes    int64  `json:"bytes"`
	Messages int64  `json:"messages"`
}

// LinkWindow is one tracked link's account within a closed window.
type LinkWindow struct {
	// A and B identify the link as an ordered host pair (A < B; client
	// -submitted traffic from host -1 keeps A = -1).
	A int `json:"a"`
	B int `json:"b"`
	// Bytes and Messages total the window's traffic on the link.
	Bytes    int64 `json:"bytes"`
	Messages int64 `json:"messages"`
	// Kinds splits the link's traffic by message kind, heaviest first.
	Kinds []KindTotal `json:"kinds"`
	// BytesPerSec is Bytes over the window length.
	BytesPerSec float64 `json:"bytesPerSec"`
	// PredictedMbps is the prediction forest's bandwidth for the link
	// (0 when no predictor is attached or the pair is out of range).
	PredictedMbps float64 `json:"predictedMbps,omitempty"`
	// Utilization is actual bits/sec over predicted bits/sec.
	Utilization float64 `json:"utilization,omitempty"`
	// Violation reports Utilization at or above the ledger's threshold.
	Violation bool `json:"violation,omitempty"`
}

// Violation is one over-threshold link at window close, kept flat for
// the violation list the API serves.
type Violation struct {
	WindowSeq     uint64  `json:"windowSeq"`
	A             int     `json:"a"`
	B             int     `json:"b"`
	BytesPerSec   float64 `json:"bytesPerSec"`
	PredictedMbps float64 `json:"predictedMbps"`
	Utilization   float64 `json:"utilization"`
}

// Window is one closed accounting window.
type Window struct {
	// Seq numbers windows from 0 in close order.
	Seq uint64 `json:"seq"`
	// Seconds is the window length the caller closed it with.
	Seconds float64 `json:"seconds"`
	// Links are the tracked links, heaviest first.
	Links []LinkWindow `json:"links"`
	// Other accumulates traffic of links evicted from the tracked set,
	// split by kind; OtherBytes/OtherMessages are its totals.
	Other         []KindTotal `json:"other,omitempty"`
	OtherBytes    int64       `json:"otherBytes"`
	OtherMessages int64       `json:"otherMessages"`
	// Evictions counts tracked links folded into Other this window.
	Evictions int64 `json:"evictions"`
	// TotalBytes and TotalMessages are the window's exact totals
	// (tracked links plus Other).
	TotalBytes    int64 `json:"totalBytes"`
	TotalMessages int64 `json:"totalMessages"`
	// Violations lists the links over the utilization threshold.
	Violations []Violation `json:"violations,omitempty"`
}

// Snapshot is a point-in-time view of the ledger for the API: cumulative
// totals plus the retained window ring.
type Snapshot struct {
	TopK          int         `json:"topK"`
	Threshold     float64     `json:"utilizationThreshold"`
	WindowSeq     uint64      `json:"windowSeq"`
	TotalBytes    int64       `json:"totalBytes"`
	TotalMessages int64       `json:"totalMessages"`
	Kinds         []KindTotal `json:"kinds"`
	OpenLinks     int         `json:"openLinks"`
	Windows       []Window    `json:"windows"`
	Violations    []Violation `json:"violations"`
}

// linkKey identifies one undirected link as an ordered host pair.
type linkKey struct {
	a, b int32
}

// pairCount is an atomically updated (bytes, messages) pair.
type pairCount struct {
	bytes atomic.Int64
	msgs  atomic.Int64
}

// cell is one tracked link's live counters for the open window.
type cell struct {
	key   linkKey
	total pairCount
	kinds [maxKinds]pairCount
}

// Ledger accounts wire bytes per link and kind. The zero value is not
// usable; use New. A nil *Ledger is a valid no-op receiver for Record,
// so transports thread an optional ledger without nil checks.
type Ledger struct {
	topK      int
	windows   int
	threshold float64

	// Cumulative totals, never reset: the reconciliation denominator
	// against the transports' delivered counters.
	total      pairCount
	kindTotals [maxKinds]pairCount

	// predictor and flight are swapped atomically so Record and Roll
	// never race attachment.
	predictor atomic.Pointer[func(a, b int) (float64, bool)]
	flight    atomic.Pointer[telemetry.FlightRecorder]

	mu        sync.RWMutex
	cells     map[linkKey]*cell // guarded by mu (cell counters are atomic)
	kindIdx   map[string]int    // guarded by mu
	kindNames []string          // guarded by mu; slot -> label
	other     [maxKinds]int64   // guarded by mu; evicted traffic, bytes
	otherMsgs [maxKinds]int64   // guarded by mu; evicted traffic, messages
	evictions int64             // guarded by mu
	windowSeq uint64            // guarded by mu; completed windows
	ring      []Window          // guarded by mu; oldest first
}

// New builds a ledger; non-positive config fields take the defaults.
func New(cfg Config) *Ledger {
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	if cfg.Windows <= 0 {
		cfg.Windows = DefaultWindows
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultThreshold
	}
	return &Ledger{
		topK:      cfg.TopK,
		windows:   cfg.Windows,
		threshold: cfg.Threshold,
		cells:     make(map[linkKey]*cell, cfg.TopK),
		kindIdx:   make(map[string]int, maxKinds),
	}
}

// SetPredictor attaches the predicted-bandwidth join: fn returns the
// predicted link bandwidth in Mbps for a host pair, or ok=false when the
// pair has no prediction (client-submitted traffic, out-of-range ids).
// A nil fn detaches.
func (l *Ledger) SetPredictor(fn func(a, b int) (mbps float64, ok bool)) {
	if l == nil {
		return
	}
	if fn == nil {
		l.predictor.Store(nil)
		return
	}
	l.predictor.Store(&fn)
}

// SetFlight attaches the flight recorder violations fire anomalies on.
// A nil recorder detaches.
func (l *Ledger) SetFlight(r *telemetry.FlightRecorder) {
	if l == nil {
		return
	}
	l.flight.Store(r)
}

// Record accounts n wire bytes of one message of the given kind on the
// (from, to) link. Safe for concurrent use; a nil ledger or non-positive
// n is a no-op. The steady-state cost is one read-locked lookup and four
// atomic adds.
func (l *Ledger) Record(from, to int, kind string, n int) {
	if l == nil || n <= 0 {
		return
	}
	a, b := from, to
	if a > b {
		a, b = b, a
	}
	key := linkKey{a: int32(a), b: int32(b)}
	l.mu.RLock()
	c := l.cells[key]
	ki, ok := l.kindIdx[kind]
	hit := c != nil && ok
	if hit {
		l.add(c, ki, n)
	}
	l.mu.RUnlock()
	if !hit {
		l.recordSlow(key, kind, n)
	}
}

// add applies one message to a cell and the cumulative totals. Caller
// holds l.mu (either mode); all counters are atomic.
func (l *Ledger) add(c *cell, ki, n int) {
	c.total.bytes.Add(int64(n))
	c.total.msgs.Add(1)
	c.kinds[ki].bytes.Add(int64(n))
	c.kinds[ki].msgs.Add(1)
	l.total.bytes.Add(int64(n))
	l.total.msgs.Add(1)
	l.kindTotals[ki].bytes.Add(int64(n))
	l.kindTotals[ki].msgs.Add(1)
}

// recordSlow is the insertion path: intern the kind label and create the
// link's cell, evicting the smallest tracked link when at capacity.
func (l *Ledger) recordSlow(key linkKey, kind string, n int) {
	l.mu.Lock()
	ki, ok := l.kindIdx[kind]
	if !ok {
		if len(l.kindNames) < maxKinds {
			ki = len(l.kindNames)
			l.kindNames = append(l.kindNames, kind)
		} else {
			// Kind overflow: fold into the last interned label. The wire
			// protocol has eight kinds, so this is a safety valve only.
			ki = maxKinds - 1
		}
		l.kindIdx[kind] = ki
	}
	c := l.cells[key]
	if c == nil {
		if len(l.cells) >= l.topK {
			l.evictMinLocked()
		}
		c = &cell{key: key}
		l.cells[key] = c
	}
	l.add(c, ki, n)
	l.mu.Unlock()
}

// evictMinLocked folds the smallest tracked link into the "other" bucket
// to make room for a new one (space-saving style: the open window keeps
// heavy links tracked while totals stay exact). Caller holds l.mu.
func (l *Ledger) evictMinLocked() {
	var victim *cell
	for _, c := range l.cells {
		if victim == nil || c.total.bytes.Load() < victim.total.bytes.Load() {
			victim = c
		}
	}
	if victim == nil {
		return
	}
	for ki := range l.kindNames {
		l.other[ki] += victim.kinds[ki].bytes.Load()
		l.otherMsgs[ki] += victim.kinds[ki].msgs.Load()
	}
	delete(l.cells, victim.key)
	l.evictions++
	mEvictions.Inc()
}

// Roll closes the open window: the tracked links (joined against the
// predictor, heaviest first), the other bucket, and the violation list
// become a completed Window appended to the ring, and accounting starts
// fresh. seconds is the window's length on the caller's clock (logical
// or wall) and only scales the rates; non-positive is treated as 1.
// Violations fire the attached flight recorder's anomaly hook, one per
// offending link, after the ledger's lock is released.
func (l *Ledger) Roll(seconds float64) Window {
	if l == nil {
		return Window{}
	}
	if seconds <= 0 {
		seconds = 1
	}
	type linkSnap struct {
		key   linkKey
		bytes int64
		msgs  int64
		kinds []KindTotal
	}
	l.mu.Lock()
	names := append([]string(nil), l.kindNames...)
	snaps := make([]linkSnap, 0, len(l.cells))
	for key, c := range l.cells {
		s := linkSnap{key: key, bytes: c.total.bytes.Load(), msgs: c.total.msgs.Load()}
		for ki, name := range names {
			if kb := c.kinds[ki].bytes.Load(); kb > 0 {
				s.kinds = append(s.kinds, KindTotal{Kind: name, Bytes: kb, Messages: c.kinds[ki].msgs.Load()})
			}
		}
		snaps = append(snaps, s)
	}
	var other []KindTotal
	var otherBytes, otherMsgs int64
	for ki, name := range names {
		if l.other[ki] > 0 || l.otherMsgs[ki] > 0 {
			other = append(other, KindTotal{Kind: name, Bytes: l.other[ki], Messages: l.otherMsgs[ki]})
			otherBytes += l.other[ki]
			otherMsgs += l.otherMsgs[ki]
		}
		l.other[ki] = 0
		l.otherMsgs[ki] = 0
	}
	evicted := l.evictions
	l.evictions = 0
	seq := l.windowSeq
	l.windowSeq++
	l.cells = make(map[linkKey]*cell, l.topK)
	l.mu.Unlock()

	// Deterministic order: heaviest first, host pair as tiebreak (the
	// map iteration order above never reaches the output unsorted).
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].bytes != snaps[j].bytes {
			return snaps[i].bytes > snaps[j].bytes
		}
		if snaps[i].key.a != snaps[j].key.a {
			return snaps[i].key.a < snaps[j].key.a
		}
		return snaps[i].key.b < snaps[j].key.b
	})

	var pred func(a, b int) (float64, bool)
	if p := l.predictor.Load(); p != nil {
		pred = *p
	}
	w := Window{Seq: seq, Seconds: seconds, Other: other, OtherBytes: otherBytes,
		OtherMessages: otherMsgs, Evictions: evicted,
		TotalBytes: otherBytes, TotalMessages: otherMsgs}
	for _, s := range snaps {
		sort.Slice(s.kinds, func(i, j int) bool {
			if s.kinds[i].Bytes != s.kinds[j].Bytes {
				return s.kinds[i].Bytes > s.kinds[j].Bytes
			}
			return s.kinds[i].Kind < s.kinds[j].Kind
		})
		lw := LinkWindow{
			A: int(s.key.a), B: int(s.key.b),
			Bytes: s.bytes, Messages: s.msgs, Kinds: s.kinds,
			BytesPerSec: float64(s.bytes) / seconds,
		}
		if pred != nil {
			if mbps, ok := pred(lw.A, lw.B); ok && mbps > 0 {
				lw.PredictedMbps = mbps
				lw.Utilization = (lw.BytesPerSec * 8) / (mbps * 1e6)
				lw.Violation = lw.Utilization >= l.threshold
			}
		}
		if lw.Violation {
			w.Violations = append(w.Violations, Violation{
				WindowSeq: seq, A: lw.A, B: lw.B,
				BytesPerSec: lw.BytesPerSec, PredictedMbps: lw.PredictedMbps,
				Utilization: lw.Utilization,
			})
		}
		w.TotalBytes += s.bytes
		w.TotalMessages += s.msgs
		w.Links = append(w.Links, lw)
	}

	mWindows.Inc()
	mTrackedLinks.Set(float64(len(w.Links)))
	for _, kt := range windowKinds(w) {
		mBytes.Add(int(kt.Bytes), kt.Kind)
		mMessages.Add(int(kt.Messages), kt.Kind)
	}
	fl := l.flight.Load()
	for _, v := range w.Violations {
		mViolations.Inc()
		fl.Anomaly(AnomalyBandwidth, v.A, v.B, fmt.Sprintf(
			"link %d-%d %.0f B/s vs %.3g Mbps predicted (util %.2f) window %d",
			v.A, v.B, v.BytesPerSec, v.PredictedMbps, v.Utilization, v.WindowSeq))
	}

	l.mu.Lock()
	l.ring = append(l.ring, w)
	if len(l.ring) > l.windows {
		l.ring = append(l.ring[:0], l.ring[len(l.ring)-l.windows:]...)
	}
	l.mu.Unlock()
	return w
}

// windowKinds sums a closed window's traffic per kind across its tracked
// links and other bucket, heaviest first.
func windowKinds(w Window) []KindTotal {
	acc := make(map[string]*KindTotal)
	add := func(kt KindTotal) {
		if e, ok := acc[kt.Kind]; ok {
			e.Bytes += kt.Bytes
			e.Messages += kt.Messages
		} else {
			c := kt
			acc[kt.Kind] = &c
		}
	}
	for _, lw := range w.Links {
		for _, kt := range lw.Kinds {
			add(kt)
		}
	}
	for _, kt := range w.Other {
		add(kt)
	}
	out := make([]KindTotal, 0, len(acc))
	for _, e := range acc {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// TotalBytes returns the cumulative ledger-accounted bytes across all
// windows, open and closed (0 for a nil ledger).
func (l *Ledger) TotalBytes() int64 {
	if l == nil {
		return 0
	}
	return l.total.bytes.Load()
}

// TotalMessages returns the cumulative ledger-accounted message count
// (0 for a nil ledger).
func (l *Ledger) TotalMessages() int64 {
	if l == nil {
		return 0
	}
	return l.total.msgs.Load()
}

// Snapshot returns the ledger's point-in-time view: cumulative per-kind
// totals, the retained window ring (oldest first) and the ring's
// violation list.
func (l *Ledger) Snapshot() Snapshot {
	if l == nil {
		return Snapshot{}
	}
	l.mu.RLock()
	s := Snapshot{
		TopK:          l.topK,
		Threshold:     l.threshold,
		WindowSeq:     l.windowSeq,
		TotalBytes:    l.total.bytes.Load(),
		TotalMessages: l.total.msgs.Load(),
		OpenLinks:     len(l.cells),
		Windows:       append([]Window(nil), l.ring...),
	}
	for ki, name := range l.kindNames {
		if b := l.kindTotals[ki].bytes.Load(); b > 0 {
			s.Kinds = append(s.Kinds, KindTotal{Kind: name, Bytes: b, Messages: l.kindTotals[ki].msgs.Load()})
		}
	}
	l.mu.RUnlock()
	sort.Slice(s.Kinds, func(i, j int) bool {
		if s.Kinds[i].Bytes != s.Kinds[j].Bytes {
			return s.Kinds[i].Bytes > s.Kinds[j].Bytes
		}
		return s.Kinds[i].Kind < s.Kinds[j].Kind
	})
	for _, w := range s.Windows {
		s.Violations = append(s.Violations, w.Violations...)
	}
	return s
}
