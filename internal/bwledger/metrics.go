package bwledger

import "bwcluster/internal/telemetry"

// Exposition metrics for the ledger, updated at window close (never on
// the per-message hot path) so a scrape sees whole-window increments.
var (
	mBytes = telemetry.NewCounterVec("bwc_bwledger_bytes_total",
		"Ledger-accounted wire bytes at window close, by message kind.",
		"kind")
	mMessages = telemetry.NewCounterVec("bwc_bwledger_messages_total",
		"Ledger-accounted messages at window close, by message kind.",
		"kind")
	mTrackedLinks = telemetry.NewGauge("bwc_bwledger_tracked_links",
		"Links tracked in the most recently closed window.")
	mEvictions = telemetry.NewCounter("bwc_bwledger_evictions_total",
		"Tracked links evicted into the other bucket by the top-K bound.")
	mViolations = telemetry.NewCounter("bwc_bwledger_violations_total",
		"Links flagged over their predicted-bandwidth utilization threshold.")
	mWindows = telemetry.NewCounter("bwc_bwledger_windows_total",
		"Completed ledger windows.")
)
