// Package metric implements the metric-space machinery underlying
// bandwidth-constrained clustering: symmetric distance/bandwidth matrices,
// the rational transform d(u,v) = C/BW(u,v) that turns bandwidth into a
// metric, and the four-point-condition (4PC) treeness statistics used in
// the paper's Section IV-C.
package metric

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
)

// DefaultC is the positive constant of the rational transform. The paper
// uses C = 100 in its running example (Fig. 1); any positive constant
// yields the same cluster answers because it rescales all distances
// uniformly.
const DefaultC = 100.0

// Space is a finite metric space over nodes 0..N()-1.
type Space interface {
	// N reports the number of nodes.
	N() int
	// Dist reports the distance between nodes i and j.
	Dist(i, j int) float64
}

// Matrix is a dense symmetric matrix over n nodes with zero diagonal,
// usable both as a distance matrix and as a bandwidth matrix (where the
// "diagonal" is conceptually infinite but stored as zero and never read).
type Matrix struct {
	n    int
	data []float64 // row-major n*n, kept symmetric by Set
}

var _ Space = (*Matrix)(nil)

// NewMatrix returns an n-by-n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, data: make([]float64, n*n)}
}

// FromFunc builds a symmetric matrix by evaluating f on every unordered
// pair i < j.
func FromFunc(n int, f func(i, j int) float64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, f(i, j))
		}
	}
	return m
}

// N reports the number of nodes.
func (m *Matrix) N() int { return m.n }

// Dist returns the entry (i, j). It implements Space.
func (m *Matrix) Dist(i, j int) float64 { return m.data[i*m.n+j] }

// At is an alias for Dist, reading better when the matrix holds bandwidth.
func (m *Matrix) At(i, j int) float64 { return m.Dist(i, j) }

// Set writes value v at (i, j) and (j, i). Setting a diagonal entry is a
// no-op: the diagonal is identically zero.
func (m *Matrix) Set(i, j int, v float64) {
	if i == j {
		return
	}
	m.data[i*m.n+j] = v
	m.data[j*m.n+i] = v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	copy(c.data, m.data)
	return c
}

// Submatrix returns the restriction of m to the given node indices, in
// order. Duplicate or out-of-range indices are an error.
func (m *Matrix) Submatrix(idx []int) (*Matrix, error) {
	seen := make(map[int]bool, len(idx))
	for _, v := range idx {
		if v < 0 || v >= m.n {
			return nil, fmt.Errorf("metric: submatrix index %d out of range [0,%d)", v, m.n)
		}
		if seen[v] {
			return nil, fmt.Errorf("metric: duplicate submatrix index %d", v)
		}
		seen[v] = true
	}
	sub := NewMatrix(len(idx))
	for a, i := range idx {
		for b, j := range idx {
			if a < b {
				sub.Set(a, b, m.Dist(i, j))
			}
		}
	}
	return sub, nil
}

// Values returns all off-diagonal upper-triangle entries (one per pair).
func (m *Matrix) Values() []float64 {
	out := make([]float64, 0, m.n*(m.n-1)/2)
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			out = append(out, m.Dist(i, j))
		}
	}
	return out
}

// Symmetrize builds a symmetric matrix from a possibly asymmetric square
// slice-of-slices by averaging forward and reverse entries, the same
// preprocessing the paper applies to the PlanetLab matrices.
func Symmetrize(asym [][]float64) (*Matrix, error) {
	n := len(asym)
	for i, row := range asym {
		if len(row) != n {
			return nil, fmt.Errorf("metric: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, (asym[i][j]+asym[j][i])/2)
		}
	}
	return m, nil
}

// DistanceFromBandwidth applies the rational transform d = C/BW entrywise.
// Bandwidth entries must be strictly positive.
func DistanceFromBandwidth(bw *Matrix, c float64) (*Matrix, error) {
	if c <= 0 {
		return nil, fmt.Errorf("metric: rational-transform constant must be positive, got %v", c)
	}
	d := NewMatrix(bw.n)
	for i := 0; i < bw.n; i++ {
		for j := i + 1; j < bw.n; j++ {
			b := bw.Dist(i, j)
			if b <= 0 {
				return nil, fmt.Errorf("metric: bandwidth(%d,%d)=%v is not positive", i, j, b)
			}
			d.Set(i, j, c/b)
		}
	}
	return d, nil
}

// BandwidthFromDistance inverts the rational transform, BW = C/d.
func BandwidthFromDistance(d *Matrix, c float64) (*Matrix, error) {
	// The transform is an involution up to the constant, so reuse it.
	bw, err := DistanceFromBandwidth(d, c)
	if err != nil {
		return nil, fmt.Errorf("metric: invert rational transform: %w", err)
	}
	return bw, nil
}

// DistanceForBandwidthConstraint converts a minimum-bandwidth query
// constraint b into the equivalent maximum-diameter constraint l = C/b.
func DistanceForBandwidthConstraint(b, c float64) (float64, error) {
	if b <= 0 || c <= 0 {
		return 0, fmt.Errorf("metric: constraint transform needs b>0, c>0 (b=%v c=%v)", b, c)
	}
	return c / b, nil
}

// Diameter returns max d(u,v) over the given nodes in the space, 0 for
// fewer than two nodes.
func Diameter(s Space, nodes []int) float64 {
	maxD := 0.0
	for a := 0; a < len(nodes); a++ {
		for b := a + 1; b < len(nodes); b++ {
			if d := s.Dist(nodes[a], nodes[b]); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// matrixWire is Matrix's serialized form.
type matrixWire struct {
	N    int
	Data []float64
}

// GobEncode implements gob.GobEncoder, making matrices persistable.
func (m *Matrix) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(matrixWire{N: m.n, Data: m.data}); err != nil {
		return nil, fmt.Errorf("metric: encode matrix: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(b []byte) error {
	var w matrixWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("metric: decode matrix: %w", err)
	}
	if w.N < 0 || len(w.Data) != w.N*w.N {
		return fmt.Errorf("metric: decode matrix: %d values for n=%d", len(w.Data), w.N)
	}
	m.n = w.N
	m.data = w.Data
	return nil
}

// ErrNotMetric reports a violated metric axiom.
var ErrNotMetric = errors.New("metric: not a metric space")

// CheckMetric verifies non-negativity, zero diagonal, symmetry and the
// triangle inequality (with a small relative tolerance). It returns a
// wrapped ErrNotMetric describing the first violation found.
func CheckMetric(s Space, tol float64) error {
	n := s.N()
	for i := 0; i < n; i++ {
		if d := s.Dist(i, i); d != 0 {
			return fmt.Errorf("%w: d(%d,%d)=%v, want 0", ErrNotMetric, i, i, d)
		}
		for j := i + 1; j < n; j++ {
			d := s.Dist(i, j)
			if d < 0 || math.IsNaN(d) {
				return fmt.Errorf("%w: d(%d,%d)=%v is negative or NaN", ErrNotMetric, i, j, d)
			}
			if r := s.Dist(j, i); r != d {
				return fmt.Errorf("%w: asymmetric d(%d,%d)=%v vs d(%d,%d)=%v", ErrNotMetric, i, j, d, j, i, r)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dij := s.Dist(i, j)
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				via := s.Dist(i, k) + s.Dist(k, j)
				if dij > via*(1+tol)+tol {
					return fmt.Errorf("%w: triangle violated d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
						ErrNotMetric, i, j, dij, i, k, k, j, via)
				}
			}
		}
	}
	return nil
}

// TriangleViolationRate returns the fraction of ordered triples (i,j,k)
// that violate the triangle inequality beyond the relative tolerance. It is
// useful for quantifying how far an embedded bandwidth matrix is from a
// true metric without failing hard.
func TriangleViolationRate(s Space, tol float64) float64 {
	n := s.N()
	if n < 3 {
		return 0
	}
	total, bad := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dij := s.Dist(i, j)
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				total++
				if dij > (s.Dist(i, k)+s.Dist(k, j))*(1+tol) {
					bad++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total)
}
