package metric

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// QuartetEpsilon quantifies how far a set of four nodes is from satisfying
// the four-point condition, after Abraham et al. ("Reconstructing
// approximate tree metrics", PODC 2007). For the three pairings of
// {w,x,y,z} into two pairs, let s1 <= s2 <= s3 be the three distance sums.
// A tree metric has s2 == s3 exactly; the epsilon of the quartet is the
// relative slack
//
//	epsilon = (s3 - s2) / s1
//
// which is 0 for a perfect tree-metric quartet and grows without bound as
// the quartet departs from treeness. (The paper only requires "epsilon = 0
// iff 4PC holds" plus a scale-free ordering of datasets by treeness; this
// normalization provides both.) A degenerate quartet with s1 == 0 (two
// coincident nodes) contributes 0 when s2 == s3 and is otherwise reported
// as +Inf by this function and skipped by AvgEpsilon.
func QuartetEpsilon(s Space, w, x, y, z int) float64 {
	s1 := s.Dist(w, x) + s.Dist(y, z)
	s2 := s.Dist(w, y) + s.Dist(x, z)
	s3 := s.Dist(w, z) + s.Dist(x, y)
	lo, mid, hi := sort3(s1, s2, s3)
	slack := hi - mid
	if slack <= 0 {
		return 0
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return slack / lo
}

func sort3(a, b, c float64) (lo, mid, hi float64) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// AvgEpsilon estimates the average quartet epsilon of the space by sampling
// `samples` random quartets with the supplied generator. Spaces with fewer
// than four nodes have epsilon 0 by convention. Infinite quartets
// (degenerate distances) are skipped.
func AvgEpsilon(s Space, samples int, rng *rand.Rand) (float64, error) {
	n := s.N()
	if n < 4 {
		return 0, nil
	}
	if samples <= 0 {
		return 0, fmt.Errorf("metric: AvgEpsilon needs samples > 0, got %d", samples)
	}
	if rng == nil {
		return 0, fmt.Errorf("metric: AvgEpsilon needs a non-nil rng")
	}
	sum, count := 0.0, 0
	idx := make([]int, 4)
	for trial := 0; trial < samples; trial++ {
		sampleDistinct(idx, n, rng)
		eps := QuartetEpsilon(s, idx[0], idx[1], idx[2], idx[3])
		if math.IsInf(eps, 1) {
			continue
		}
		sum += eps
		count++
	}
	if count == 0 {
		return 0, nil
	}
	return sum / float64(count), nil
}

// AvgEpsilonExact computes the average quartet epsilon over all C(n,4)
// quartets. It is O(n^4) and intended for small spaces and tests; callers
// with larger spaces should use AvgEpsilon.
func AvgEpsilonExact(s Space) float64 {
	n := s.N()
	if n < 4 {
		return 0
	}
	sum, count := 0.0, 0
	for w := 0; w < n; w++ {
		for x := w + 1; x < n; x++ {
			for y := x + 1; y < n; y++ {
				for z := y + 1; z < n; z++ {
					eps := QuartetEpsilon(s, w, x, y, z)
					if math.IsInf(eps, 1) {
						continue
					}
					sum += eps
					count++
				}
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func sampleDistinct(dst []int, n int, rng *rand.Rand) {
	for i := range dst {
	retry:
		v := rng.Intn(n)
		for j := 0; j < i; j++ {
			if dst[j] == v {
				goto retry
			}
		}
		dst[i] = v
	}
}

// EpsilonDistribution samples quartet epsilons and returns the requested
// percentiles (each in [0,100]), giving a fuller treeness picture than
// the average alone (Ramasubramanian et al. report exactly such
// distributions).
func EpsilonDistribution(s Space, samples int, percentiles []float64, rng *rand.Rand) ([]float64, error) {
	n := s.N()
	if n < 4 {
		out := make([]float64, len(percentiles))
		return out, nil
	}
	if samples <= 0 {
		return nil, fmt.Errorf("metric: EpsilonDistribution needs samples > 0, got %d", samples)
	}
	if rng == nil {
		return nil, fmt.Errorf("metric: EpsilonDistribution needs a non-nil rng")
	}
	eps := make([]float64, 0, samples)
	idx := make([]int, 4)
	for trial := 0; trial < samples; trial++ {
		sampleDistinct(idx, n, rng)
		e := QuartetEpsilon(s, idx[0], idx[1], idx[2], idx[3])
		if math.IsInf(e, 1) {
			continue
		}
		eps = append(eps, e)
	}
	sort.Float64s(eps)
	out := make([]float64, len(percentiles))
	for i, p := range percentiles {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("metric: percentile %v out of range [0,100]", p)
		}
		if len(eps) == 0 {
			continue
		}
		pos := int(p / 100 * float64(len(eps)-1))
		out[i] = eps[pos]
	}
	return out, nil
}

// EpsilonStar maps epsilon_avg in [0, +Inf) to the bounded treeness
// variable epsilon* = 1 - 1/(1+epsilon_avg) in [0, 1) used by the paper's
// Section IV-C model.
func EpsilonStar(epsAvg float64) float64 {
	if epsAvg < 0 {
		epsAvg = 0
	}
	return 1 - 1/(1+epsAvg)
}

// FAStar rescales the CDF slope f_a in [0,1] to f_a* in [1/alpha, alpha]
// via f_a* = (alpha - 1/alpha) * f_a + 1/alpha, with alpha > 1 (the paper
// uses alpha = 3.2).
func FAStar(fa, alpha float64) (float64, error) {
	if alpha <= 1 {
		return 0, fmt.Errorf("metric: FAStar needs alpha > 1, got %v", alpha)
	}
	if fa < 0 || fa > 1 {
		return 0, fmt.Errorf("metric: FAStar needs f_a in [0,1], got %v", fa)
	}
	return (alpha-1/alpha)*fa + 1/alpha, nil
}

// EpsilonSharp is the adjusted treeness variable epsilon# = min(1,
// epsilon* x f_a*), combining raw treeness with the local density of
// bandwidth values around the query constraint.
func EpsilonSharp(epsStar, faStar float64) float64 {
	v := epsStar * faStar
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}

// ModelWPR evaluates the paper's Equation 1, the predicted wrong-pair rate
// WPR = f_b^(1/epsilon#). Edge cases: epsilon# = 0 predicts a perfect
// framework (WPR 0 unless f_b = 1), and f_b outside (0,1) clamps to the
// boundary values.
func ModelWPR(fb, epsSharp float64) float64 {
	switch {
	case fb <= 0:
		return 0
	case fb >= 1:
		return 1
	case epsSharp <= 0:
		return 0
	}
	return math.Pow(fb, 1/epsSharp)
}
