package metric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomTreeMetric builds a random edge-weighted tree over n leaves (with
// n-2 extra internal nodes on average) and returns the induced n-by-n leaf
// distance matrix. By Buneman's theorem the result is an exact tree metric.
func randomTreeMetric(n int, rng *rand.Rand) *Matrix {
	// Build a random tree over 2n-1 vertices; the first n are leaves.
	total := 2*n - 1
	if total < 1 {
		total = 1
	}
	parent := make([]int, total)
	weight := make([]float64, total)
	parent[0] = -1
	for v := 1; v < total; v++ {
		parent[v] = rng.Intn(v)
		weight[v] = 0.5 + rng.Float64()*10
	}
	// Distance between two vertices via root paths.
	depth := make([]float64, total)
	for v := 1; v < total; v++ {
		depth[v] = depth[parent[v]] + weight[v]
	}
	anc := func(v int) []int {
		var path []int
		for v != -1 {
			path = append(path, v)
			v = parent[v]
		}
		return path
	}
	dist := func(a, b int) float64 {
		pa, pb := anc(a), anc(b)
		onA := make(map[int]bool, len(pa))
		for _, v := range pa {
			onA[v] = true
		}
		lca := 0
		for _, v := range pb {
			if onA[v] {
				lca = v
				break
			}
		}
		return depth[a] + depth[b] - 2*depth[lca]
	}
	return FromFunc(n, func(i, j int) float64 { return dist(i, j) })
}

func TestMatrixSetGet(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 5)
	m.Set(2, 1, 7)
	if m.Dist(0, 1) != 5 || m.Dist(1, 0) != 5 {
		t.Errorf("symmetry broken: %v %v", m.Dist(0, 1), m.Dist(1, 0))
	}
	if m.Dist(1, 2) != 7 || m.At(2, 1) != 7 {
		t.Errorf("got %v %v, want 7 7", m.Dist(1, 2), m.At(2, 1))
	}
	m.Set(1, 1, 99) // diagonal writes are ignored
	if m.Dist(1, 1) != 0 {
		t.Errorf("diagonal = %v, want 0", m.Dist(1, 1))
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 3)
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.Dist(0, 1) != 3 {
		t.Errorf("clone aliases original: %v", m.Dist(0, 1))
	}
}

func TestSubmatrix(t *testing.T) {
	m := FromFunc(4, func(i, j int) float64 { return float64(10*i + j) })
	sub, err := m.Submatrix([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 {
		t.Fatalf("sub.N() = %d, want 2", sub.N())
	}
	if sub.Dist(0, 1) != m.Dist(3, 1) {
		t.Errorf("sub(0,1) = %v, want %v", sub.Dist(0, 1), m.Dist(3, 1))
	}
}

func TestSubmatrixErrors(t *testing.T) {
	m := NewMatrix(3)
	if _, err := m.Submatrix([]int{0, 3}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := m.Submatrix([]int{1, 1}); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := m.Submatrix([]int{-1}); err == nil {
		t.Error("negative index should fail")
	}
}

func TestValues(t *testing.T) {
	m := FromFunc(3, func(i, j int) float64 { return float64(i + j) })
	vals := m.Values()
	if len(vals) != 3 {
		t.Fatalf("got %d values, want 3", len(vals))
	}
	want := []float64{1, 2, 3} // pairs (0,1),(0,2),(1,2)
	for i, v := range want {
		if vals[i] != v {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], v)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	asym := [][]float64{
		{0, 10, 20},
		{30, 0, 40},
		{60, 80, 0},
	}
	m, err := Symmetrize(asym)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist(0, 1) != 20 || m.Dist(0, 2) != 40 || m.Dist(1, 2) != 60 {
		t.Errorf("symmetrized = %v %v %v", m.Dist(0, 1), m.Dist(0, 2), m.Dist(1, 2))
	}
}

func TestSymmetrizeRagged(t *testing.T) {
	if _, err := Symmetrize([][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged input should fail")
	}
}

func TestRationalTransform(t *testing.T) {
	bw := NewMatrix(2)
	bw.Set(0, 1, 50)
	d, err := DistanceFromBandwidth(bw, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dist(0, 1) != 2 {
		t.Errorf("d = %v, want 2", d.Dist(0, 1))
	}
	back, err := BandwidthFromDistance(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.Dist(0, 1)-50) > 1e-12 {
		t.Errorf("round trip = %v, want 50", back.Dist(0, 1))
	}
}

func TestRationalTransformErrors(t *testing.T) {
	bw := NewMatrix(2)
	bw.Set(0, 1, 50)
	if _, err := DistanceFromBandwidth(bw, 0); err == nil {
		t.Error("c=0 should fail")
	}
	zero := NewMatrix(2) // bandwidth 0 between the pair
	if _, err := DistanceFromBandwidth(zero, 100); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestDistanceForBandwidthConstraint(t *testing.T) {
	l, err := DistanceForBandwidthConstraint(25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l != 4 {
		t.Errorf("l = %v, want 4", l)
	}
	if _, err := DistanceForBandwidthConstraint(0, 100); err == nil {
		t.Error("b=0 should fail")
	}
	if _, err := DistanceForBandwidthConstraint(10, -1); err == nil {
		t.Error("c<0 should fail")
	}
}

// Property: the rational transform round-trips for random positive
// bandwidth matrices.
func TestRationalTransformRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		bw := FromFunc(n, func(i, j int) float64 { return 1 + rng.Float64()*500 })
		c := 1 + rng.Float64()*1000
		d, err := DistanceFromBandwidth(bw, c)
		if err != nil {
			t.Fatal(err)
		}
		back, err := BandwidthFromDistance(d, c)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if math.Abs(back.Dist(i, j)-bw.Dist(i, j)) > 1e-9*bw.Dist(i, j) {
					t.Fatalf("round trip mismatch at (%d,%d): %v vs %v", i, j, back.Dist(i, j), bw.Dist(i, j))
				}
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	m := FromFunc(4, func(i, j int) float64 { return float64(i + j) })
	if d := Diameter(m, []int{0, 1, 2, 3}); d != 5 {
		t.Errorf("diameter = %v, want 5", d)
	}
	if d := Diameter(m, []int{2}); d != 0 {
		t.Errorf("singleton diameter = %v, want 0", d)
	}
	if d := Diameter(m, nil); d != 0 {
		t.Errorf("empty diameter = %v, want 0", d)
	}
}

func TestCheckMetricAcceptsTreeMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		m := randomTreeMetric(4+rng.Intn(8), rng)
		if err := CheckMetric(m, 1e-9); err != nil {
			t.Fatalf("tree metric rejected: %v", err)
		}
	}
}

func TestCheckMetricRejectsViolations(t *testing.T) {
	bad := NewMatrix(3)
	bad.Set(0, 1, 1)
	bad.Set(1, 2, 1)
	bad.Set(0, 2, 10) // violates triangle
	err := CheckMetric(bad, 1e-9)
	if !errors.Is(err, ErrNotMetric) {
		t.Errorf("err = %v, want ErrNotMetric", err)
	}

	neg := NewMatrix(2)
	neg.Set(0, 1, -1)
	if err := CheckMetric(neg, 0); !errors.Is(err, ErrNotMetric) {
		t.Errorf("negative distance: err = %v, want ErrNotMetric", err)
	}
}

func TestTriangleViolationRate(t *testing.T) {
	good := FromFunc(4, func(i, j int) float64 { return 1 })
	if r := TriangleViolationRate(good, 1e-9); r != 0 {
		t.Errorf("uniform metric violation rate = %v, want 0", r)
	}
	bad := NewMatrix(3)
	bad.Set(0, 1, 1)
	bad.Set(1, 2, 1)
	bad.Set(0, 2, 10)
	if r := TriangleViolationRate(bad, 1e-9); r <= 0 {
		t.Errorf("violating metric rate = %v, want > 0", r)
	}
	if r := TriangleViolationRate(NewMatrix(2), 0); r != 0 {
		t.Errorf("n<3 rate = %v, want 0", r)
	}
}

// Property: every quartet of an exact tree metric has epsilon 0, so both
// the sampled and exact averages are 0.
func TestTreeMetricEpsilonZeroProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		m := randomTreeMetric(5+rng.Intn(6), rng)
		if eps := AvgEpsilonExact(m); eps > 1e-9 {
			t.Fatalf("exact tree metric has eps = %v", eps)
		}
		eps, err := AvgEpsilon(m, 200, rng)
		if err != nil {
			t.Fatal(err)
		}
		if eps > 1e-9 {
			t.Fatalf("sampled eps = %v on tree metric", eps)
		}
	}
}

// Property: perturbing a tree metric increases epsilon.
func TestEpsilonGrowsWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randomTreeMetric(12, rng)
	noisy := base.Clone()
	for i := 0; i < noisy.N(); i++ {
		for j := i + 1; j < noisy.N(); j++ {
			noisy.Set(i, j, noisy.Dist(i, j)*(1+rng.Float64()*0.8))
		}
	}
	e0 := AvgEpsilonExact(base)
	e1 := AvgEpsilonExact(noisy)
	if e1 <= e0 {
		t.Errorf("noise did not raise epsilon: %v <= %v", e1, e0)
	}
}

func TestQuartetEpsilonDegenerate(t *testing.T) {
	// Quartet with two coincident points (s1 == 0) but unequal larger sums
	// must be +Inf.
	m := NewMatrix(4)
	// nodes 0/1 coincident and 2/3 coincident, larger sums balanced
	m.Set(0, 1, 0)
	m.Set(2, 3, 0)
	m.Set(0, 2, 1)
	m.Set(1, 3, 2)
	m.Set(0, 3, 2)
	m.Set(1, 2, 1)
	// sums: d(0,1)+d(2,3)=0, d(0,2)+d(1,3)=3, d(0,3)+d(1,2)=3 -> s2==s3
	if eps := QuartetEpsilon(m, 0, 1, 2, 3); eps != 0 {
		t.Errorf("balanced degenerate quartet eps = %v, want 0", eps)
	}
	m.Set(1, 3, 7)
	// sums: 0+0=0, 1+7=8, 2+1=3 -> slack>0 with lo==0
	if eps := QuartetEpsilon(m, 0, 1, 2, 3); !math.IsInf(eps, 1) {
		t.Errorf("degenerate quartet eps = %v, want +Inf", eps)
	}
}

func TestAvgEpsilonSmallAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(3)
	eps, err := AvgEpsilon(m, 10, rng)
	if err != nil || eps != 0 {
		t.Errorf("n<4: eps=%v err=%v, want 0,nil", eps, err)
	}
	m4 := NewMatrix(4)
	if _, err := AvgEpsilon(m4, 0, rng); err == nil {
		t.Error("samples=0 should fail")
	}
	if _, err := AvgEpsilon(m4, 10, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestEpsilonStar(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{in: 0, want: 0},
		{in: 1, want: 0.5},
		{in: 3, want: 0.75},
		{in: -5, want: 0}, // clamped
	}
	for _, tt := range tests {
		if got := EpsilonStar(tt.in); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("EpsilonStar(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
	// Monotone and bounded in [0, 1).
	prev := -1.0
	for e := 0.0; e < 100; e += 0.5 {
		v := EpsilonStar(e)
		if v <= prev || v >= 1 {
			t.Fatalf("EpsilonStar not monotone/bounded at %v: %v", e, v)
		}
		prev = v
	}
}

func TestFAStar(t *testing.T) {
	v, err := FAStar(0, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1/3.2) > 1e-12 {
		t.Errorf("FAStar(0) = %v, want %v", v, 1/3.2)
	}
	v, err = FAStar(1, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-3.2) > 1e-12 {
		t.Errorf("FAStar(1) = %v, want 3.2", v)
	}
	if _, err := FAStar(0.5, 1); err == nil {
		t.Error("alpha<=1 should fail")
	}
	if _, err := FAStar(2, 3.2); err == nil {
		t.Error("f_a>1 should fail")
	}
}

func TestEpsilonSharp(t *testing.T) {
	if v := EpsilonSharp(0.5, 1); v != 0.5 {
		t.Errorf("EpsilonSharp(0.5,1) = %v", v)
	}
	if v := EpsilonSharp(0.9, 3.2); v != 1 {
		t.Errorf("EpsilonSharp should clamp to 1, got %v", v)
	}
	if v := EpsilonSharp(-1, 2); v != 0 {
		t.Errorf("EpsilonSharp should clamp to 0, got %v", v)
	}
}

func TestModelWPR(t *testing.T) {
	if v := ModelWPR(0, 0.5); v != 0 {
		t.Errorf("fb=0: %v", v)
	}
	if v := ModelWPR(1, 0.5); v != 1 {
		t.Errorf("fb=1: %v", v)
	}
	if v := ModelWPR(0.5, 0); v != 0 {
		t.Errorf("eps#=0: %v", v)
	}
	// eps#=1 -> WPR == f_b (random-choice regime).
	if v := ModelWPR(0.3, 1); math.Abs(v-0.3) > 1e-12 {
		t.Errorf("eps#=1: %v, want 0.3", v)
	}
	// Smaller eps# -> smaller WPR at the same f_b.
	if ModelWPR(0.5, 0.2) >= ModelWPR(0.5, 0.8) {
		t.Error("ModelWPR not increasing in eps#")
	}
	// WPR increases with f_b.
	if ModelWPR(0.2, 0.5) >= ModelWPR(0.8, 0.5) {
		t.Error("ModelWPR not increasing in f_b")
	}
}

func TestEpsilonDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := randomTreeMetric(12, rng)
	pcts, err := EpsilonDistribution(m, 2000, []float64{50, 90}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pcts[0] > 1e-9 || pcts[1] > 1e-9 {
		t.Errorf("tree metric epsilon percentiles = %v, want 0", pcts)
	}
	noisy := m.Clone()
	for i := 0; i < noisy.N(); i++ {
		for j := i + 1; j < noisy.N(); j++ {
			noisy.Set(i, j, noisy.Dist(i, j)*(1+rng.Float64()*0.5))
		}
	}
	pcts, err = EpsilonDistribution(noisy, 2000, []float64{10, 50, 90}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(pcts[0] <= pcts[1] && pcts[1] <= pcts[2]) {
		t.Errorf("percentiles not ordered: %v", pcts)
	}
	if pcts[2] <= 0 {
		t.Errorf("noisy P90 = %v, want > 0", pcts[2])
	}
	// Small spaces yield zeros; bad args fail.
	small, err := EpsilonDistribution(NewMatrix(3), 10, []float64{50}, rng)
	if err != nil || small[0] != 0 {
		t.Errorf("n<4: %v %v", small, err)
	}
	if _, err := EpsilonDistribution(m, 0, []float64{50}, rng); err == nil {
		t.Error("samples=0 should fail")
	}
	if _, err := EpsilonDistribution(m, 10, []float64{50}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := EpsilonDistribution(m, 10, []float64{101}, rng); err == nil {
		t.Error("bad percentile should fail")
	}
}
