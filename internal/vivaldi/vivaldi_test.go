package vivaldi

import (
	"math"
	"math/rand"
	"testing"

	"bwcluster/internal/metric"
	"bwcluster/internal/testutil"
)

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := metric.NewMatrix(2)
	bad := []Config{
		{Rounds: 0, Samples: 1, CC: 0.25, CE: 0.25},
		{Rounds: 1, Samples: 0, CC: 0.25, CE: 0.25},
		{Rounds: 1, Samples: 1, CC: 0, CE: 0.25},
		{Rounds: 1, Samples: 1, CC: 0.25, CE: 2},
	}
	for i, cfg := range bad {
		if _, err := Embed(o, cfg, rng); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	if _, err := Embed(nil, DefaultConfig(), rng); err == nil {
		t.Error("nil oracle should fail")
	}
	if _, err := Embed(o, DefaultConfig(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestEmbedTinySpaces(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, err := Embed(metric.NewMatrix(0), DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 0 {
		t.Errorf("N = %d", e.N())
	}
	e, err = Embed(metric.NewMatrix(1), DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 1 || e.Dist(0, 0) != 0 {
		t.Errorf("single node embedding broken")
	}
}

// Points that genuinely live in 2-d Euclidean space must embed with low
// error: this is Vivaldi's home turf.
func TestEmbedEuclideanData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	o := metric.FromFunc(n, func(i, j int) float64 { return pts[i].Dist(pts[j]) })
	e, err := Embed(o, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	med, err := MedianRelativeError(e, o)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.12 {
		t.Errorf("median relative error on Euclidean data = %v, want < 0.12", med)
	}
}

// Tree metrics do not fit 2-d Euclidean space well; the embedding must
// still produce finite coordinates, and its error should exceed the error
// on native Euclidean data (this is the gap the paper exploits).
func TestEmbedTreeMetricHasHigherError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 40
	tree := testutil.RandomTreeMetric(n, rng)
	eTree, err := Embed(tree, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c := eTree.Coord(i)
		if math.IsNaN(c.X) || math.IsInf(c.X, 0) || math.IsNaN(c.Y) || math.IsInf(c.Y, 0) {
			t.Fatalf("coordinate %d is not finite: %+v", i, c)
		}
	}
	medTree, err := MedianRelativeError(eTree, tree)
	if err != nil {
		t.Fatal(err)
	}
	if medTree <= 0 {
		t.Errorf("tree-metric embedding error = %v, expected positive", medTree)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	o := testutil.RandomTreeMetric(15, rand.New(rand.NewSource(5)))
	e1, err := Embed(o, DefaultConfig(), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Embed(o, DefaultConfig(), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < o.N(); i++ {
		if e1.Coord(i) != e2.Coord(i) {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, e1.Coord(i), e2.Coord(i))
		}
	}
}

func TestMatrixMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := testutil.RandomTreeMetric(10, rng)
	e, err := Embed(o, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	m := e.Matrix()
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if math.Abs(m.Dist(i, j)-e.Dist(i, j)) > 1e-12 {
				t.Fatalf("matrix(%d,%d)=%v, Dist=%v", i, j, m.Dist(i, j), e.Dist(i, j))
			}
		}
	}
}

func TestPointsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := testutil.RandomTreeMetric(5, rng)
	e, err := Embed(o, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Points()
	pts[0] = Point{X: 1e9}
	if e.Coord(0).X == 1e9 {
		t.Error("Points aliases internal state")
	}
}

func TestMedianRelativeErrorSizeMismatch(t *testing.T) {
	e := &Embedding{coords: make([]Point, 3)}
	if _, err := MedianRelativeError(e, metric.NewMatrix(4)); err == nil {
		t.Error("size mismatch should fail")
	}
}

// Height-vector data (planar distance plus per-node access penalties) is
// fit much better by the height model than by plain 2-d coordinates.
func TestHeightModelFitsAccessLinkData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 40
	pts := make([]Point, n)
	heights := make([]float64, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		heights[i] = 10 + rng.Float64()*60
	}
	o := metric.FromFunc(n, func(i, j int) float64 {
		return math.Hypot(pts[i].X-pts[j].X, pts[i].Y-pts[j].Y) + heights[i] + heights[j]
	})
	cfg := DefaultConfig()
	plain, err := Embed(o, cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Height = true
	withHeight, err := Embed(o, cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	medPlain, err := MedianRelativeError(plain, o)
	if err != nil {
		t.Fatal(err)
	}
	medHeight, err := MedianRelativeError(withHeight, o)
	if err != nil {
		t.Fatal(err)
	}
	if medHeight >= medPlain {
		t.Errorf("height model error %v not below plain %v", medHeight, medPlain)
	}
	if medHeight > 0.15 {
		t.Errorf("height model error %v too large for native height data", medHeight)
	}
	// Heights must stay non-negative.
	for i := 0; i < n; i++ {
		if withHeight.Coord(i).H < 0 {
			t.Fatalf("negative height at %d: %v", i, withHeight.Coord(i).H)
		}
	}
}

func TestUpdateIgnoresNonPositiveRTT(t *testing.T) {
	coords := []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	errEst := []float64{1, 1}
	rng := rand.New(rand.NewSource(8))
	update(coords, errEst, 0, 1, 0, DefaultConfig(), rng)
	if coords[0].X != 0 || coords[0].Y != 0 {
		t.Error("rtt=0 sample moved the node")
	}
}
