// Package vivaldi implements the Vivaldi decentralized network-coordinate
// algorithm (Dabek, Cox, Kaashoek, Morris — SIGCOMM 2004) in a 2-d
// Euclidean space. The clustering paper uses it, combined with the
// rational transform, as the comparison bandwidth-prediction model
// (HP/UMD-EUCL-CENTRAL): each host gets 2-d coordinates whose Euclidean
// distances approximate the transformed bandwidth measurements.
package vivaldi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bwcluster/internal/metric"
)

// Config controls the embedding simulation.
type Config struct {
	// Rounds is how many update rounds every node performs.
	Rounds int
	// Samples is how many random peers each node measures per round.
	Samples int
	// CC is the coordinate adaptation gain (delta = CC * w).
	CC float64
	// CE is the error-estimate adaptation gain.
	CE float64
	// Height enables Vivaldi's height-vector model: each node carries a
	// non-negative height added to every distance, capturing the
	// access-link component that Euclidean coordinates cannot (Dabek et
	// al., Sec. 5.4). Off by default to match the paper's plain 2-d
	// comparison model.
	Height bool
}

// DefaultConfig returns the standard Vivaldi parameters (cc = ce = 0.25)
// with enough rounds to converge on a few hundred nodes.
func DefaultConfig() Config {
	return Config{Rounds: 60, Samples: 16, CC: 0.25, CE: 0.25}
}

func (c Config) validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("vivaldi: rounds must be positive, got %d", c.Rounds)
	}
	if c.Samples <= 0 {
		return fmt.Errorf("vivaldi: samples must be positive, got %d", c.Samples)
	}
	if c.CC <= 0 || c.CC > 1 {
		return fmt.Errorf("vivaldi: cc must be in (0,1], got %v", c.CC)
	}
	if c.CE <= 0 || c.CE > 1 {
		return fmt.Errorf("vivaldi: ce must be in (0,1], got %v", c.CE)
	}
	return nil
}

// Point is a 2-d coordinate with an optional height component.
type Point struct {
	X, Y float64
	// H is the height-vector component; 0 in the plain 2-d model.
	H float64
}

// Dist returns the distance between two points: the Euclidean part plus
// both heights (heights model the trip down and up access links, so they
// always add).
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y) + p.H + q.H
}

// Embedding holds converged coordinates for n hosts.
type Embedding struct {
	coords []Point
}

var _ metric.Space = (*Embedding)(nil)

// N reports the number of embedded hosts.
func (e *Embedding) N() int { return len(e.coords) }

// Dist returns the embedded (predicted) distance between hosts i and j.
func (e *Embedding) Dist(i, j int) float64 { return e.coords[i].Dist(e.coords[j]) }

// Coord returns host i's coordinate.
func (e *Embedding) Coord(i int) Point { return e.coords[i] }

// Points returns a copy of all coordinates.
func (e *Embedding) Points() []Point {
	out := make([]Point, len(e.coords))
	copy(out, e.coords)
	return out
}

// Matrix materializes the pairwise embedded distances.
func (e *Embedding) Matrix() *metric.Matrix {
	return metric.FromFunc(len(e.coords), func(i, j int) float64 { return e.Dist(i, j) })
}

// Embed runs the Vivaldi simulation against the measured distances in o
// (typically a rational-transformed bandwidth matrix) and returns the
// converged coordinates. The simulation is deterministic for a given rng.
func Embed(o metric.Space, cfg Config, rng *rand.Rand) (*Embedding, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if o == nil {
		return nil, fmt.Errorf("vivaldi: nil oracle")
	}
	if rng == nil {
		return nil, fmt.Errorf("vivaldi: nil rng")
	}
	n := o.N()
	coords := make([]Point, n)
	errEst := make([]float64, n)
	for i := range coords {
		// Small random start breaks symmetry deterministically.
		coords[i] = Point{X: rng.Float64()*1e-3 - 5e-4, Y: rng.Float64()*1e-3 - 5e-4}
		if cfg.Height {
			coords[i].H = rng.Float64() * 1e-3
		}
		errEst[i] = 1
	}
	if n < 2 {
		return &Embedding{coords: coords}, nil
	}
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			for s := 0; s < cfg.Samples; s++ {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				update(coords, errEst, i, j, o.Dist(i, j), cfg, rng)
			}
		}
	}
	return &Embedding{coords: coords}, nil
}

// update applies one Vivaldi sample at node i against remote node j whose
// measured distance is rtt.
func update(coords []Point, errEst []float64, i, j int, rtt float64, cfg Config, rng *rand.Rand) {
	if rtt <= 0 {
		return
	}
	cur := coords[i].Dist(coords[j])
	// Sample weight balances local vs remote confidence.
	w := errEst[i] / (errEst[i] + errEst[j])
	relErr := math.Abs(cur-rtt) / rtt
	errEst[i] = relErr*cfg.CE*w + errEst[i]*(1-cfg.CE*w)
	if errEst[i] > 1 {
		errEst[i] = 1
	}
	// Unit vector from j to i; random planar direction when coincident.
	// With heights, vector subtraction ADDS the heights (the packet goes
	// up one access link and down the other), so the height component of
	// the direction is (h_i + h_j) / norm.
	dx, dy := coords[i].X-coords[j].X, coords[i].Y-coords[j].Y
	planar := math.Hypot(dx, dy)
	hSum := coords[i].H + coords[j].H
	norm := planar + hSum
	if planar < 1e-12 {
		angle := rng.Float64() * 2 * math.Pi
		dx, dy = math.Cos(angle), math.Sin(angle)
		planar = 1
		if norm < 1e-12 {
			norm = 1
		}
	}
	force := cfg.CC * w * (rtt - cur)
	coords[i].X += force * dx / planar * (planar / norm)
	coords[i].Y += force * dy / planar * (planar / norm)
	if cfg.Height {
		coords[i].H += force * hSum / norm
		if coords[i].H < 0 {
			coords[i].H = 0
		}
	}
}

// MedianRelativeError reports the median of |d_emb - d_real| / d_real over
// all pairs, a standard Vivaldi quality metric.
func MedianRelativeError(e *Embedding, o metric.Space) (float64, error) {
	if e.N() != o.N() {
		return 0, fmt.Errorf("vivaldi: size mismatch %d vs %d", e.N(), o.N())
	}
	var errs []float64
	for i := 0; i < o.N(); i++ {
		for j := i + 1; j < o.N(); j++ {
			real := o.Dist(i, j)
			if real <= 0 {
				continue
			}
			errs = append(errs, math.Abs(e.Dist(i, j)-real)/real)
		}
	}
	if len(errs) == 0 {
		return 0, nil
	}
	cp := append([]float64(nil), errs...)
	sort.Float64s(cp)
	return cp[len(cp)/2], nil
}
