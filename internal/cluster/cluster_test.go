package cluster

import (
	"math/rand"
	"testing"

	"bwcluster/internal/metric"
	"bwcluster/internal/testutil"
)

func lineMetric(positions ...float64) *metric.Matrix {
	return metric.FromFunc(len(positions), func(i, j int) float64 {
		d := positions[i] - positions[j]
		if d < 0 {
			d = -d
		}
		return d
	})
}

func TestFindClusterValidation(t *testing.T) {
	m := metric.NewMatrix(3)
	if _, err := FindCluster(m, 1, 5); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := FindCluster(m, 2, -1); err == nil {
		t.Error("l<0 should fail")
	}
	if _, err := FindCluster(nil, 2, 1); err == nil {
		t.Error("nil space should fail")
	}
}

func TestFindClusterLine(t *testing.T) {
	// Nodes at 0, 1, 2, 10, 11.
	m := lineMetric(0, 1, 2, 10, 11)
	tests := []struct {
		name    string
		k       int
		l       float64
		wantNil bool
		wantLen int
	}{
		{name: "tight triple", k: 3, l: 2, wantLen: 3},
		{name: "tight pair far side", k: 2, l: 1, wantLen: 2},
		{name: "impossible size", k: 4, l: 2, wantNil: true},
		{name: "huge l takes all", k: 5, l: 100, wantLen: 5},
		{name: "zero l no pair", k: 2, l: 0, wantNil: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := FindCluster(m, tt.k, tt.l)
			if err != nil {
				t.Fatal(err)
			}
			if tt.wantNil {
				if got != nil {
					t.Fatalf("got %v, want nil", got)
				}
				return
			}
			if len(got) != tt.wantLen {
				t.Fatalf("got %v, want %d nodes", got, tt.wantLen)
			}
			if !Valid(m, got, tt.l) {
				t.Errorf("cluster %v violates diameter %v", got, tt.l)
			}
		})
	}
}

func TestFindClusterFirstQualifyingPair(t *testing.T) {
	// Two qualifying pairs: (0,1) at distance 1 and (3,4) at distance 0.5.
	// The lexicographic pair scan (the paper's "foreach node pair") must
	// return the (0,1) cluster even though (3,4) is tighter.
	m := lineMetric(0, 1, 100, 200, 200.5)
	got, err := FindCluster(m, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("got %v, want [0 1]", got)
	}
}

func TestMembers(t *testing.T) {
	m := lineMetric(0, 1, 2, 10)
	got := Members(m, 0, 2) // d=2; members: 0,1,2
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMaxClusterSize(t *testing.T) {
	m := lineMetric(0, 1, 2, 10, 11)
	tests := []struct {
		l    float64
		want int
	}{
		{l: 0, want: 1},   // no pair qualifies
		{l: 1, want: 2},   // {0,1} or {1,2} or {10,11}
		{l: 2, want: 3},   // {0,1,2}
		{l: 100, want: 5}, // everything
	}
	for _, tt := range tests {
		got, witness := MaxClusterSize(m, tt.l)
		if got != tt.want {
			t.Errorf("MaxClusterSize(l=%v) = %d, want %d", tt.l, got, tt.want)
		}
		if got >= 2 && !Valid(m, witness, tt.l) {
			t.Errorf("witness %v violates l=%v", witness, tt.l)
		}
		if len(witness) != got && got >= 2 {
			t.Errorf("witness size %d != reported %d", len(witness), got)
		}
	}
	if n, w := MaxClusterSize(metric.NewMatrix(0), 1); n != 0 || w != nil {
		t.Errorf("empty space: %d %v", n, w)
	}
	if n, _ := MaxClusterSize(nil, 1); n != 0 {
		t.Errorf("nil space: %d", n)
	}
}

func TestMaxClusterSizeBinaryMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(15)
		m := testutil.NoisyTreeMetric(n, 0.2, rng)
		for _, l := range []float64{0.1, 1, 5, 20, 100} {
			direct, _ := MaxClusterSize(m, l)
			binary, err := MaxClusterSizeBinary(m, l)
			if err != nil {
				t.Fatal(err)
			}
			if direct != binary {
				t.Fatalf("n=%d l=%v: direct=%d binary=%d", n, l, direct, binary)
			}
		}
	}
	if n, err := MaxClusterSizeBinary(nil, 1); err != nil || n != 0 {
		t.Errorf("nil space: %d %v", n, err)
	}
}

// Theorem 3.1 in practice: on exact tree metrics, Algorithm 1 finds a
// cluster if and only if brute force does, and its answers satisfy the
// diameter constraint on the true distances.
func TestFindClusterCompleteOnTreeMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8) // small enough for brute force
		m := testutil.RandomTreeMetric(n, rng)
		vals := m.Values()
		for _, li := range []int{0, len(vals) / 4, len(vals) / 2, len(vals) - 1} {
			l := vals[li]
			for k := 2; k <= n; k++ {
				fast, err := FindCluster(m, k, l)
				if err != nil {
					t.Fatal(err)
				}
				slow, err := BruteForce(m, k, l)
				if err != nil {
					t.Fatal(err)
				}
				if (fast == nil) != (slow == nil) {
					t.Fatalf("n=%d k=%d l=%v: algorithm1=%v bruteforce=%v", n, k, l, fast, slow)
				}
				if fast != nil {
					if len(fast) != k {
						t.Fatalf("cluster size %d, want %d", len(fast), k)
					}
					if !Valid(m, fast, l*(1+1e-9)) {
						t.Fatalf("n=%d k=%d l=%v: cluster %v violates diameter", n, k, l, fast)
					}
				}
			}
		}
	}
}

// On non-tree metrics Algorithm 1 may return diameter-violating sets (it
// trusts diam(S*pq) = d(p,q)); that is exactly the error source the WPR
// experiments measure. Here we only assert it still terminates and
// returns sets of the right size.
func TestFindClusterOnNoisyMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := testutil.NoisyTreeMetric(20, 0.5, rng)
	vals := m.Values()
	med := vals[len(vals)/2]
	got, err := FindCluster(m, 5, med)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil && len(got) != 5 {
		t.Errorf("size %d, want 5", len(got))
	}
}

func TestValid(t *testing.T) {
	m := lineMetric(0, 1, 5)
	if !Valid(m, []int{0, 1}, 1) {
		t.Error("pair within l rejected")
	}
	if Valid(m, []int{0, 2}, 1) {
		t.Error("pair beyond l accepted")
	}
	if !Valid(m, nil, 0) {
		t.Error("empty set should be valid")
	}
	if !Valid(m, []int{2}, 0) {
		t.Error("singleton should be valid")
	}
}

func TestBruteForce(t *testing.T) {
	m := lineMetric(0, 1, 2, 10)
	got, err := BruteForce(m, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !Valid(m, got, 2) {
		t.Errorf("brute force got %v", got)
	}
	got, err = BruteForce(m, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("impossible query returned %v", got)
	}
	if _, err := BruteForce(m, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestIndexMatchesFindCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(15)
		m := testutil.NoisyTreeMetric(n, 0.3, rng)
		ix, err := NewIndex(m)
		if err != nil {
			t.Fatal(err)
		}
		if ix.N() != n {
			t.Fatalf("index N = %d, want %d", ix.N(), n)
		}
		vals := m.Values()
		for _, l := range []float64{0, vals[0], vals[len(vals)/2], vals[len(vals)-1] * 2} {
			for k := 2; k <= n; k++ {
				direct, err := FindCluster(m, k, l)
				if err != nil {
					t.Fatal(err)
				}
				indexed, err := ix.Find(k, l)
				if err != nil {
					t.Fatal(err)
				}
				if (direct == nil) != (indexed == nil) {
					t.Fatalf("n=%d k=%d l=%v: direct=%v indexed=%v", n, k, l, direct, indexed)
				}
				for i := range direct {
					if direct[i] != indexed[i] {
						t.Fatalf("n=%d k=%d l=%v: direct=%v indexed=%v", n, k, l, direct, indexed)
					}
				}
			}
			dm, _ := MaxClusterSize(m, l)
			if im := ix.MaxSize(l); im != dm {
				t.Fatalf("MaxSize(l=%v): indexed=%d direct=%d", l, im, dm)
			}
		}
	}
}

func TestIndexEdgeCases(t *testing.T) {
	if _, err := NewIndex(nil); err == nil {
		t.Error("nil space should fail")
	}
	empty, err := NewIndex(metric.NewMatrix(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.MaxSize(10); got != 0 {
		t.Errorf("empty MaxSize = %d", got)
	}
	single, err := NewIndex(metric.NewMatrix(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := single.MaxSize(10); got != 1 {
		t.Errorf("single MaxSize = %d", got)
	}
	c, err := single.Find(2, 10)
	if err != nil || c != nil {
		t.Errorf("single Find = %v, %v", c, err)
	}
	if _, err := single.Find(0, 1); err == nil {
		t.Error("invalid k should fail")
	}
}

func TestFindClusterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := testutil.NoisyTreeMetric(12, 0.4, rng)
	a, err := FindCluster(m, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindCluster(m, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}
