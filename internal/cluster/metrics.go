package cluster

import "bwcluster/internal/telemetry"

// Telemetry for the Algorithm 1 scan paths. Counters sit at row
// granularity (one atomic add per O(n) row, not per O(n^2) pair), so the
// instrumented scan is indistinguishable from the bare one; the series
// quantify how much scan work queries cost and how well the parallel
// early-cancel and the index memo absorb it.
var (
	mScanRows = telemetry.NewCounter("bwc_cluster_scan_rows_total",
		"Candidate-scan rows evaluated by Algorithm 1 (sequential and parallel).")
	mScanAborts = telemetry.NewCounter("bwc_cluster_scan_aborted_rows_total",
		"Parallel-scan rows cancelled early because a smaller row already answered.")
	mCacheHits = telemetry.NewCounter("bwc_cluster_index_cache_hits_total",
		"Index (k, l) query-cache hits.")
	mCacheMisses = telemetry.NewCounter("bwc_cluster_index_cache_misses_total",
		"Index (k, l) query-cache misses (full scans).")
)
