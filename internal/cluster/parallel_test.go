package cluster

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"bwcluster/internal/metric"
)

// randomSpace builds an n-node metric space with clustered structure:
// nodes fall into groups with small intra-group and large inter-group
// distances, plus jitter, so (k, l) queries have non-trivial answers.
func randomSpace(n int, seed int64) *metric.Matrix {
	rng := rand.New(rand.NewSource(seed))
	groups := 4
	m := metric.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			base := 10.0
			if i%groups == j%groups {
				base = 1.0
			}
			m.Set(i, j, base+rng.Float64())
		}
	}
	return m
}

// TestFindClusterParallelMatchesSequential checks the determinism
// contract: the parallel scan answers with exactly the cluster the
// sequential lexicographic scan answers with, across sizes spanning the
// sequential-fallback threshold and several worker counts.
func TestFindClusterParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{8, 40, 96, 130} {
		s := randomSpace(n, int64(n))
		for _, k := range []int{2, 3, n / 4, n / 2, n} {
			if k < 2 {
				continue
			}
			for _, l := range []float64{0.5, 1.5, 2.5, 11, 100} {
				want, err := FindCluster(s, k, l)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 3, 8, 0} {
					got, err := FindClusterParallel(s, k, l, workers)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("n=%d k=%d l=%v workers=%d: parallel %v, sequential %v",
							n, k, l, workers, got, want)
					}
				}
			}
		}
	}
}

// TestFindClusterParallelValidation mirrors the sequential argument
// checks.
func TestFindClusterParallelValidation(t *testing.T) {
	s := randomSpace(10, 1)
	if _, err := FindClusterParallel(s, 1, 1, 4); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := FindClusterParallel(s, 2, -1, 4); err == nil {
		t.Error("negative l should fail")
	}
	if _, err := FindClusterParallel(nil, 2, 1, 4); err == nil {
		t.Error("nil space should fail")
	}
}

// TestMaxClusterSizeParallelMatchesSequential checks the exhaustive
// variant agrees with the sequential scan (same size; the witness must be
// a real cluster of that size within l).
func TestMaxClusterSizeParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{10, 80, 120} {
		s := randomSpace(n, int64(n)*7)
		for _, l := range []float64{0.5, 2.0, 11, 100} {
			wantSize, _ := MaxClusterSize(s, l)
			gotSize, witness := MaxClusterSizeParallel(s, l, 4)
			if gotSize != wantSize {
				t.Fatalf("n=%d l=%v: parallel size %d, sequential %d", n, l, gotSize, wantSize)
			}
			if wantSize >= 2 {
				if len(witness) != gotSize {
					t.Fatalf("n=%d l=%v: witness length %d, size %d", n, l, len(witness), gotSize)
				}
				if !Valid(s, witness, l) {
					// In tree metrics the witness diameter equals the
					// determining pair's distance; the synthetic space is
					// not an exact tree metric, so check against the same
					// relaxed criterion MaxClusterSize satisfies: every
					// member within l of the determining pair is accepted,
					// diameters can exceed l only as the sequential
					// version's witness would too. Compare sizes instead.
					seqSize, seqWitness := MaxClusterSize(s, l)
					if len(seqWitness) != len(witness) || seqSize != gotSize {
						t.Fatalf("n=%d l=%v: inconsistent witnesses", n, l)
					}
				}
			}
		}
	}
}

// TestNewIndexParallelMatchesSequential checks the parallel index build
// produces identical query behavior.
func TestNewIndexParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{20, 70, 110} {
		s := randomSpace(n, int64(n)*13)
		seq, err := NewIndex(s)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewIndexParallel(s, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.lexSizes, par.lexSizes) {
			t.Fatalf("n=%d: lexSizes differ", n)
		}
		if !reflect.DeepEqual(seq.prefixMax, par.prefixMax) {
			t.Fatalf("n=%d: prefixMax differ", n)
		}
		for _, k := range []int{2, n / 3, n / 2} {
			if k < 2 {
				continue
			}
			for _, l := range []float64{0.7, 2.2, 12} {
				a, err := seq.Find(k, l)
				if err != nil {
					t.Fatal(err)
				}
				b, err := par.FindParallel(k, l, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("n=%d k=%d l=%v: Find %v, FindParallel %v", n, k, l, a, b)
				}
			}
		}
	}
}

// TestIndexCache checks memoization semantics: hits return equal answers,
// and mutating a returned slice does not poison later answers.
func TestIndexCache(t *testing.T) {
	s := randomSpace(60, 5)
	ix, err := NewIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ix.Find(4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("expected a cluster at (4, 2.5) in the grouped space")
	}
	// Corrupt the caller's copy; the cache must be unaffected.
	first[0] = -99
	second, err := ix.Find(4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] == -99 {
		t.Fatal("cache aliased a caller's slice")
	}
	direct, err := FindCluster(s, 4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, direct) {
		t.Fatalf("cached answer %v, direct %v", second, direct)
	}
	// Negative answers are cached too and stay nil.
	miss, err := ix.Find(s.N()+1, 0.1)
	if err == nil && miss != nil {
		t.Fatalf("impossible query returned %v", miss)
	}
}

// TestIndexConcurrentQueries hammers one index from many goroutines with
// overlapping (k, l) queries; run under -race this exercises the cache
// locking, and every answer must match the sequential reference.
func TestIndexConcurrentQueries(t *testing.T) {
	s := randomSpace(90, 11)
	ix, err := NewIndexParallel(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	type query struct {
		k int
		l float64
	}
	queries := []query{{2, 1.4}, {5, 2.2}, {9, 2.8}, {20, 11}, {45, 12}, {3, 0.9}}
	want := make(map[query][]int)
	for _, qu := range queries {
		w, err := FindCluster(s, qu.k, qu.l)
		if err != nil {
			t.Fatal(err)
		}
		want[qu] = w
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				qu := queries[(g+i)%len(queries)]
				var got []int
				var err error
				if i%2 == 0 {
					got, err = ix.Find(qu.k, qu.l)
				} else {
					got, err = ix.FindParallel(qu.k, qu.l, 3)
				}
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				if !reflect.DeepEqual(got, want[qu]) {
					select {
					case errCh <- errMismatch(qu.k, qu.l, got, want[qu]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func errMismatch(k int, l float64, got, want []int) error {
	return &mismatchError{k: k, l: l, got: got, want: want}
}

type mismatchError struct {
	k    int
	l    float64
	got  []int
	want []int
}

func (e *mismatchError) Error() string {
	return "concurrent query mismatch"
}

// BenchmarkFindClusterParallel compares the sequential candidate scan
// with the sharded one on a 256-node space where the qualifying pair sits
// deep in the scan (a tight constraint met only inside one group), the
// regime where Algorithm 1's O(n^3) cost bites.
func BenchmarkFindClusterParallel(b *testing.B) {
	const n = 256
	s := randomSpace(n, 42)
	// A constraint satisfiable only by a near-complete group: forces the
	// scan to size many candidate pairs before answering.
	k, l := n/8, 1.9
	if c, err := FindCluster(s, k, l); err != nil || c == nil {
		b.Fatalf("benchmark query must succeed (cluster=%v err=%v)", c, err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FindCluster(s, k, l); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FindClusterParallel(s, k, l, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexBuildParallel compares sequential and sharded index
// precomputation at n=256.
func BenchmarkIndexBuildParallel(b *testing.B) {
	const n = 256
	s := randomSpace(n, 43)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewIndex(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewIndexParallel(s, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
