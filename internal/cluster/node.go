package cluster

import (
	"fmt"
	"math"

	"bwcluster/internal/metric"
)

// FindNodeForSet implements the paper's first future-work extension
// ("for a given set of multiple nodes, find a single node that has high
// bandwidth with all the nodes in the input set"): among candidates not
// in the set, it returns the node minimizing the maximum distance to any
// set member, provided that maximum is at most l. It returns -1 when no
// candidate qualifies.
//
// In bandwidth terms (after the rational transform) this is the node
// whose *worst* predicted bandwidth to the set is best, subject to the
// worst being at least the transformed constraint — exactly the
// bottleneck-optimal placement for, say, a data distributor or an extra
// worker joining a running job set.
func FindNodeForSet(s metric.Space, set []int, l float64) (int, float64, error) {
	if s == nil {
		return -1, 0, fmt.Errorf("cluster: nil space")
	}
	if len(set) == 0 {
		return -1, 0, fmt.Errorf("cluster: empty input set")
	}
	if l < 0 {
		return -1, 0, fmt.Errorf("cluster: constraint l must be >= 0, got %v", l)
	}
	inSet := make(map[int]bool, len(set))
	for _, m := range set {
		if m < 0 || m >= s.N() {
			return -1, 0, fmt.Errorf("cluster: set member %d out of range [0,%d)", m, s.N())
		}
		inSet[m] = true
	}
	best, bestD := -1, math.Inf(1)
	for x := 0; x < s.N(); x++ {
		if inSet[x] {
			continue
		}
		worst := 0.0
		for _, m := range set {
			if d := s.Dist(x, m); d > worst {
				worst = d
			}
		}
		if worst <= l && worst < bestD {
			best, bestD = x, worst
		}
	}
	if best == -1 {
		return -1, 0, nil
	}
	return best, bestD, nil
}

// SetRadius returns max_{m in set} d(x, m), the quantity FindNodeForSet
// minimizes, or +Inf for an empty set.
func SetRadius(s metric.Space, x int, set []int) float64 {
	if len(set) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, m := range set {
		if d := s.Dist(x, m); d > worst {
			worst = d
		}
	}
	return worst
}
