package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bwcluster/internal/testutil"
)

// Property (testing/quick over random seeds): for any noisy metric space
// and any (k, l) drawn from it, FindCluster either returns exactly k
// in-range, duplicate-free nodes or nil; and whenever it returns nil on
// an exact tree metric, brute force also finds nothing.
func TestFindClusterInvariantsQuick(t *testing.T) {
	invariant := func(seed int64, kRaw uint8, lPick uint8, noisy bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		noise := 0.0
		if noisy {
			noise = 0.4
		}
		m := testutil.NoisyTreeMetric(n, noise, rng)
		k := 2 + int(kRaw)%(n-1)
		vals := m.Values()
		l := vals[int(lPick)%len(vals)]
		got, err := FindCluster(m, k, l)
		if err != nil {
			return false
		}
		if got == nil {
			if noise == 0 {
				slow, err := BruteForce(m, k, l)
				if err != nil || slow != nil {
					return false
				}
			}
			return true
		}
		if len(got) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, x := range got {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		// On exact tree metrics the answer really has diameter <= l.
		if noise == 0 && !Valid(m, got, l*(1+1e-9)) {
			return false
		}
		return true
	}
	if err := quick.Check(invariant, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: MaxClusterSize is monotone non-decreasing in l on any metric
// (S*pq membership does not depend on l), and on exact tree metrics its
// witness really satisfies the diameter bound (Theorem 3.1; on noisy
// metrics the witness may violate it — that is exactly the WPR error
// source the paper measures).
func TestMaxClusterSizeMonotoneQuick(t *testing.T) {
	monotone := func(seed int64, noisy bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		noise := 0.0
		if noisy {
			noise = 0.3
		}
		m := testutil.NoisyTreeMetric(n, noise, rng)
		maxDist := 0.0
		for _, v := range m.Values() {
			if v > maxDist {
				maxDist = v
			}
		}
		prev := 0
		for _, frac := range []float64{0, 0.25, 0.5, 1, 2} {
			l := maxDist * frac
			size, witness := MaxClusterSize(m, l)
			if size < prev {
				return false
			}
			if !noisy && size >= 2 && !Valid(m, witness, l*(1+1e-9)) {
				return false
			}
			prev = size
		}
		return prev == n // l = 2*max covers everything
	}
	if err := quick.Check(monotone, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the Index agrees with the direct algorithm for arbitrary
// (seed, k, l) combinations.
func TestIndexEquivalenceQuick(t *testing.T) {
	equiv := func(seed int64, kRaw, lPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		m := testutil.NoisyTreeMetric(n, 0.3, rng)
		ix, err := NewIndex(m)
		if err != nil {
			return false
		}
		k := 2 + int(kRaw)%(n-1)
		vals := m.Values()
		l := vals[int(lPick)%len(vals)]
		direct, err1 := FindCluster(m, k, l)
		indexed, err2 := ix.Find(k, l)
		if err1 != nil || err2 != nil {
			return false
		}
		if (direct == nil) != (indexed == nil) || len(direct) != len(indexed) {
			return false
		}
		for i := range direct {
			if direct[i] != indexed[i] {
				return false
			}
		}
		dm, _ := MaxClusterSize(m, l)
		return ix.MaxSize(l) == dm
	}
	if err := quick.Check(equiv, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
