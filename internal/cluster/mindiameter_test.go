package cluster

import (
	"math"
	"math/rand"
	"testing"

	"bwcluster/internal/metric"
	"bwcluster/internal/testutil"
)

// bruteMinDiameter finds the true minimum diameter over all k-subsets.
func bruteMinDiameter(s metric.Space, k int) float64 {
	best := math.Inf(1)
	picked := make([]int, 0, k)
	var rec func(next int)
	rec = func(next int) {
		if len(picked) == k {
			if d := metric.Diameter(s, picked); d < best {
				best = d
			}
			return
		}
		if s.N()-next < k-len(picked) {
			return
		}
		for x := next; x < s.N(); x++ {
			picked = append(picked, x)
			rec(x + 1)
			picked = picked[:len(picked)-1]
		}
	}
	rec(0)
	return best
}

func TestMinDiameterValidation(t *testing.T) {
	m := metric.NewMatrix(3)
	if _, _, err := MinDiameter(m, 1); err == nil {
		t.Error("k=1 should fail")
	}
	if _, _, err := MinDiameter(nil, 2); err == nil {
		t.Error("nil space should fail")
	}
	members, _, err := MinDiameter(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if members != nil {
		t.Error("k > n should return nil members")
	}
}

// On exact tree metrics, MinDiameter is optimal: it matches the
// brute-force minimum over all k-subsets exactly.
func TestMinDiameterOptimalOnTreeMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(7)
		m := testutil.RandomTreeMetric(n, rng)
		for k := 2; k <= n && k <= 5; k++ {
			members, diam, err := MinDiameter(m, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(members) != k {
				t.Fatalf("got %d members, want %d", len(members), k)
			}
			want := bruteMinDiameter(m, k)
			got := metric.Diameter(m, members)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("n=%d k=%d: diameter %v, optimal %v", n, k, got, want)
			}
			if math.Abs(diam-want) > 1e-9*(1+want) {
				t.Fatalf("n=%d k=%d: reported diameter %v, optimal %v", n, k, diam, want)
			}
		}
	}
}

// On noisy metrics the reported diameter is the tree-metric bound; the
// actual set diameter may differ, but the call still returns k valid
// distinct nodes.
func TestMinDiameterOnNoisyMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := testutil.NoisyTreeMetric(15, 0.4, rng)
	members, diam, err := MinDiameter(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 5 || diam < 0 {
		t.Fatalf("members=%v diam=%v", members, diam)
	}
	seen := map[int]bool{}
	for _, x := range members {
		if seen[x] {
			t.Fatalf("duplicate member in %v", members)
		}
		seen[x] = true
	}
}

// Consistency with FindCluster: querying with l = the optimal diameter
// must succeed, and with anything strictly smaller (minus tolerance) it
// must fail on tree metrics.
func TestMinDiameterConsistentWithFindCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := testutil.RandomTreeMetric(12, rng)
	for k := 2; k <= 6; k++ {
		_, diam, err := MinDiameter(m, k)
		if err != nil {
			t.Fatal(err)
		}
		at, err := FindCluster(m, k, diam*(1+1e-12))
		if err != nil {
			t.Fatal(err)
		}
		if at == nil {
			t.Fatalf("k=%d: FindCluster failed at the optimal diameter %v", k, diam)
		}
		below, err := FindCluster(m, k, diam*(1-1e-6))
		if err != nil {
			t.Fatal(err)
		}
		if below != nil && metric.Diameter(m, below) > diam*(1-1e-7) {
			t.Fatalf("k=%d: FindCluster succeeded below the optimum", k)
		}
	}
}
