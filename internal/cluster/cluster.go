// Package cluster implements the paper's Algorithm 1 — the centralized
// polynomial-time clustering algorithm for tree metric spaces — together
// with a reusable precomputed index and a brute-force reference used in
// tests.
//
// Given a metric space (V, d), a size constraint k >= 2 and a diameter
// constraint l, the algorithm considers for every node pair (p, q) the
// candidate cluster
//
//	S*pq = { x in V : d(x,p) <= d(p,q) and d(x,q) <= d(p,q) },
//
// the largest cluster whose diameter is determined by (p, q). In a tree
// metric space diam(S*pq) = d(p,q) (Theorem 3.1), so scanning pairs with
// d(p,q) <= l and returning k nodes from the first sufficiently large
// S*pq solves the problem in O(n^3). Pairs are scanned in lexicographic
// (p, q) order, matching the paper's "foreach node pair" loop: the first
// qualifying pair answers the query, deterministically.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bwcluster/internal/metric"
)

// FindCluster runs Algorithm 1 on s: it returns k node indices forming a
// cluster of diameter at most l (under the tree-metric assumption), or nil
// if no node pair admits one. k must be at least 2 and l non-negative.
func FindCluster(s metric.Space, k int, l float64) ([]int, error) {
	if err := validate(s, k, l); err != nil {
		return nil, err
	}
	n := s.N()
	for p := 0; p < n; p++ {
		mScanRows.Inc()
		for q := p + 1; q < n; q++ {
			if s.Dist(p, q) > l {
				continue
			}
			// Size the candidate set without materializing it: the scan
			// visits O(n^2) pairs and allocates only for the one answer.
			if countMembers(s, p, q) >= k {
				return Members(s, p, q)[:k], nil
			}
		}
	}
	return nil, nil
}

func validate(s metric.Space, k int, l float64) error {
	if k < 2 {
		return fmt.Errorf("cluster: size constraint k must be >= 2, got %d", k)
	}
	if l < 0 {
		return fmt.Errorf("cluster: diameter constraint l must be >= 0, got %v", l)
	}
	if s == nil {
		return fmt.Errorf("cluster: nil space")
	}
	return nil
}

// Members returns S*pq: every node within d(p,q) of both p and q, in
// ascending index order. p and q are always members.
func Members(s metric.Space, p, q int) []int {
	dpq := s.Dist(p, q)
	members := make([]int, 0, 8)
	for x := 0; x < s.N(); x++ {
		if s.Dist(x, p) <= dpq && s.Dist(x, q) <= dpq {
			members = append(members, x)
		}
	}
	return members
}

// countMembers returns |S*pq| without materializing the member slice —
// the allocation-free form every O(n^3) scan uses, reserving Members for
// the single qualifying pair that answers a query.
func countMembers(s metric.Space, p, q int) int {
	dpq := s.Dist(p, q)
	count := 0
	for x, n := 0, s.N(); x < n; x++ {
		if s.Dist(x, p) <= dpq && s.Dist(x, q) <= dpq {
			count++
		}
	}
	return count
}

// MaxClusterSize returns the largest k for which FindCluster(s, k, l)
// succeeds, together with a witness cluster of that size. Spaces where no
// pair satisfies d(p,q) <= l yield min(N,1) with a singleton (or nil)
// witness: a lone node is trivially a "cluster" of size one, but no k >= 2
// query can be satisfied.
func MaxClusterSize(s metric.Space, l float64) (int, []int) {
	if s == nil || s.N() == 0 {
		return 0, nil
	}
	best, bp, bq := 0, -1, -1
	for p := 0; p < s.N(); p++ {
		for q := p + 1; q < s.N(); q++ {
			if s.Dist(p, q) > l {
				continue
			}
			if c := countMembers(s, p, q); c > best {
				best, bp, bq = c, p, q
			}
		}
	}
	if best == 0 {
		return 1, []int{0}
	}
	return best, Members(s, bp, bq)
}

// MaxClusterSizeBinary computes the same maximum via binary search over k
// with repeated FindCluster calls, the strategy Algorithm 3 suggests for a
// node's local clustering space. It exists for the ablation benchmark
// comparing the two strategies; MaxClusterSize is the direct O(n^3) scan.
func MaxClusterSizeBinary(s metric.Space, l float64) (int, error) {
	if s == nil || s.N() == 0 {
		return 0, nil
	}
	lo, hi := 2, s.N() // invariant: answer < hi+1
	if c, err := FindCluster(s, 2, l); err != nil {
		return 0, err
	} else if c == nil {
		return 1, nil
	}
	// Largest feasible k in [lo, hi].
	for lo < hi {
		mid := (lo + hi + 1) / 2
		c, err := FindCluster(s, mid, l)
		if err != nil {
			return 0, err
		}
		if c != nil {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// MinDiameter finds k nodes whose diameter is minimal (the k-diameter
// problem of Aggarwal et al., exact in tree metric spaces): scanning node
// pairs by ascending distance, the first pair whose S*pq reaches k nodes
// determines the optimal cluster, because diam(S*pq) = d(p,q) in a tree
// metric. It returns the members and the achieved diameter, or nil when
// the space has fewer than k nodes.
func MinDiameter(s metric.Space, k int) ([]int, float64, error) {
	if k < 2 {
		return nil, 0, fmt.Errorf("cluster: size constraint k must be >= 2, got %d", k)
	}
	if s == nil {
		return nil, 0, fmt.Errorf("cluster: nil space")
	}
	if s.N() < k {
		return nil, 0, nil
	}
	for _, pr := range sortedPairs(s) {
		if countMembers(s, int(pr.p), int(pr.q)) >= k {
			return Members(s, int(pr.p), int(pr.q))[:k], pr.d, nil
		}
	}
	return nil, 0, nil
}

// Valid reports whether the given nodes form a cluster of diameter at most
// l in s (checking every pair against the actual distances, with no
// tree-metric assumption).
func Valid(s metric.Space, nodes []int, l float64) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if s.Dist(nodes[i], nodes[j]) > l {
				return false
			}
		}
	}
	return true
}

// BruteForce searches all subsets for k nodes with true diameter at most l
// (exact in any metric space, exponential time). It is the test reference
// for FindCluster's completeness on tree metrics.
func BruteForce(s metric.Space, k int, l float64) ([]int, error) {
	if err := validate(s, k, l); err != nil {
		return nil, err
	}
	picked := make([]int, 0, k)
	var rec func(next int) []int
	rec = func(next int) []int {
		if len(picked) == k {
			out := make([]int, k)
			copy(out, picked)
			return out
		}
		// Not enough nodes left to finish.
		if s.N()-next < k-len(picked) {
			return nil
		}
		for x := next; x < s.N(); x++ {
			ok := true
			for _, m := range picked {
				if s.Dist(m, x) > l {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			picked = append(picked, x)
			if out := rec(x + 1); out != nil {
				return out
			}
			picked = picked[:len(picked)-1]
		}
		return nil
	}
	return rec(0), nil
}

// pair is one (p, q) candidate with its distance. Node IDs are int32
// indices into the space — the index never stores pointers, so the whole
// pair table is one contiguous allocation the GC scans in O(1).
type pair struct {
	d    float64
	p, q int32
}

func sortedPairs(s metric.Space) []pair {
	n := s.N()
	pairs := make([]pair, 0, n*(n-1)/2)
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			pairs = append(pairs, pair{p: int32(p), q: int32(q), d: s.Dist(p, q)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.d != b.d {
			return a.d < b.d
		}
		if a.p != b.p {
			return a.p < b.p
		}
		return a.q < b.q
	})
	return pairs
}

// Index precomputes, for one metric space, every |S*pq|, so that queries
// with arbitrary (k, l) run in O(n^2) after an O(n^3) build. Index.Find
// returns exactly what FindCluster would.
//
// An Index is safe for concurrent use: the precomputed tables are never
// written after construction, and the (k, l) query cache is guarded by a
// read-write mutex.
type Index struct {
	space     metric.Space
	n         int
	lexSizes  []int32 // |S*pq| indexed p*n+q (p < q); n < 2^31 always holds
	pairs     []pair  // sorted ascending by distance, for MaxSize
	prefixMax []int32 // prefixMax[i] = max |S*pq| over pairs[0..i]

	// Memoized (k, l) -> members answers; repeated queries — the serving
	// pattern, where clients retry the same few (k, b) combinations — are
	// O(1) after the first evaluation. Negative answers are cached too.
	mu    sync.RWMutex
	cache map[queryKey][]int // guarded by mu

	// epoch tags the membership generation the indexed space was derived
	// at (predtree.Forest.Epoch). The index memoizes over a fixed host
	// set, so once membership moves, its answers describe hosts that may
	// no longer exist: FindAt rejects queries carrying a different epoch
	// instead of answering them silently wrong.
	epoch uint64
}

type queryKey struct {
	k int
	l float64
}

func errNilSpace() error { return fmt.Errorf("cluster: nil space") }

// NewIndex builds the query index for s.
func NewIndex(s metric.Space) (*Index, error) {
	if s == nil {
		return nil, errNilSpace()
	}
	n := s.N()
	lexSizes := make([]int32, n*n)
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			lexSizes[p*n+q] = int32(countMembers(s, p, q))
		}
	}
	return finishIndex(s, n, lexSizes), nil
}

// ErrStaleIndex is returned by FindAt when the caller's membership epoch
// differs from the one the index was built at. Callers should rebuild the
// index from the current forest and retry rather than serve the answer.
var ErrStaleIndex = errors.New("cluster: index is stale")

// NewIndexAt builds the query index for s and tags it with the
// membership epoch (predtree.Forest.Epoch) the space was derived at.
func NewIndexAt(s metric.Space, epoch uint64) (*Index, error) {
	ix, err := NewIndex(s)
	if err != nil {
		return nil, err
	}
	ix.epoch = epoch
	return ix, nil
}

// finishIndex derives the sorted-pair tables from the precomputed
// |S*pq| sizes and assembles the index.
func finishIndex(s metric.Space, n int, lexSizes []int32) *Index {
	pairs := sortedPairs(s)
	prefixMax := make([]int32, len(pairs))
	running := int32(0)
	for i, pr := range pairs {
		if sz := lexSizes[int(pr.p)*n+int(pr.q)]; sz > running {
			running = sz
		}
		prefixMax[i] = running
	}
	return &Index{
		space: s, n: n, lexSizes: lexSizes, pairs: pairs,
		prefixMax: prefixMax, cache: make(map[queryKey][]int),
	}
}

// cached returns a copy of the memoized answer for (k, l) if present.
// Copies keep callers from aliasing (and possibly mutating) each other's
// result slices.
func (ix *Index) cached(k int, l float64) ([]int, bool) {
	ix.mu.RLock()
	members, ok := ix.cache[queryKey{k: k, l: l}]
	ix.mu.RUnlock()
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	mCacheHits.Inc()
	if members == nil {
		return nil, true
	}
	out := make([]int, len(members))
	copy(out, members)
	return out, true
}

// store memoizes the answer for (k, l), keeping a private copy.
func (ix *Index) store(k int, l float64, members []int) {
	var cp []int
	if members != nil {
		cp = make([]int, len(members))
		copy(cp, members)
	}
	ix.mu.Lock()
	ix.cache[queryKey{k: k, l: l}] = cp
	ix.mu.Unlock()
}

// N reports the number of nodes in the indexed space.
func (ix *Index) N() int { return ix.space.N() }

// lastWithin returns the index of the last pair with d <= l, or -1.
func (ix *Index) lastWithin(l float64) int {
	return sort.Search(len(ix.pairs), func(i int) bool { return ix.pairs[i].d > l }) - 1
}

// MaxSize returns the largest cluster size achievable with diameter
// constraint l (semantics identical to MaxClusterSize).
func (ix *Index) MaxSize(l float64) int {
	last := ix.lastWithin(l)
	if last < 0 {
		if ix.space.N() == 0 {
			return 0
		}
		return 1
	}
	return int(ix.prefixMax[last])
}

// Find answers a (k, l) query, returning the same cluster FindCluster
// would compute directly, or nil when none exists. Answers are memoized;
// repeated queries hit the cache.
func (ix *Index) Find(k int, l float64) ([]int, error) {
	if err := validate(ix.space, k, l); err != nil {
		return nil, err
	}
	if members, ok := ix.cached(k, l); ok {
		return members, nil
	}
	var members []int
	last := ix.lastWithin(l)
	if last >= 0 && int(ix.prefixMax[last]) >= k {
		members = ix.scanFrom(0, k, l)
	}
	ix.store(k, l, members)
	return members, nil
}

// Epoch reports the membership epoch the index was built at (zero for
// indexes built with plain NewIndex/NewIndexParallel).
func (ix *Index) Epoch() uint64 { return ix.epoch }

// FindAt answers a (k, l) query like Find, but first checks that the
// caller's membership epoch matches the one the index was built at. A
// mismatch returns an error wrapping ErrStaleIndex instead of an answer:
// after a join or leave the precomputed tables describe a host set that
// no longer exists, and a silently wrong cluster is worse than a retry.
func (ix *Index) FindAt(epoch uint64, k int, l float64) ([]int, error) {
	if epoch != ix.epoch {
		return nil, fmt.Errorf("cluster: index built at membership epoch %d, queried at %d: %w",
			ix.epoch, epoch, ErrStaleIndex)
	}
	return ix.Find(k, l)
}

// scanFrom runs the lexicographic candidate scan starting at row p0 and
// returns the first qualifying cluster, or nil.
func (ix *Index) scanFrom(p0, k int, l float64) []int {
	for p := p0; p < ix.n; p++ {
		mScanRows.Inc()
		for q := p + 1; q < ix.n; q++ {
			if int(ix.lexSizes[p*ix.n+q]) >= k && ix.space.Dist(p, q) <= l {
				return Members(ix.space, p, q)[:k]
			}
		}
	}
	return nil
}
