package cluster

import (
	"math/rand"
	"testing"

	"bwcluster/internal/testutil"
)

// FuzzFindClusterRepresentations builds every representation of the
// Algorithm 1 scan from the same fuzzed metric space — the direct
// sequential scan, the flat precomputed Index, and both work-stealing
// parallel variants — and asserts they give identical answers. This is
// the equivalence backstop for the flat-memory refactor (DESIGN.md §8g):
// the determinism contract says the FIRST qualifying pair in
// lexicographic order answers, so the answers must match element for
// element, not just set-wise.
func FuzzFindClusterRepresentations(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(64))
	f.Add(int64(42), uint8(0), uint8(0), uint8(0))
	f.Add(int64(-7), uint8(255), uint8(128), uint8(200))
	// Seed 15 draws n = 69 >= minParallelN, so the corpus exercises the
	// real work-stealing path, not just the small-n sequential fallback.
	f.Add(int64(15), uint8(7), uint8(50), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, kRaw, lPick, noiseRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(70)
		noise := float64(noiseRaw) / 255 * 0.5
		m := testutil.NoisyTreeMetric(n, noise, rng)
		k := 2 + int(kRaw)%(n-1)
		vals := m.Values()
		l := vals[int(lPick)%len(vals)]

		direct, err := FindCluster(m, k, l)
		if err != nil {
			t.Fatalf("FindCluster: %v", err)
		}
		ix, err := NewIndex(m)
		if err != nil {
			t.Fatalf("NewIndex: %v", err)
		}
		ixPar, err := NewIndexParallel(m, 3)
		if err != nil {
			t.Fatalf("NewIndexParallel: %v", err)
		}
		check := func(name string, got []int, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if (direct == nil) != (got == nil) || len(direct) != len(got) {
				t.Fatalf("%s answer %v, direct scan answered %v", name, got, direct)
			}
			for i := range direct {
				if direct[i] != got[i] {
					t.Fatalf("%s answer %v, direct scan answered %v", name, got, direct)
				}
			}
		}
		indexed, err := ix.Find(k, l)
		check("Index.Find", indexed, err)
		par, err := FindClusterParallel(m, k, l, 3)
		check("FindClusterParallel", par, err)
		ixp, err := ixPar.FindParallel(k, l, 3)
		check("Index.FindParallel (parallel-built index)", ixp, err)

		// The sized-pair tables of both index builds must agree too.
		if ix.MaxSize(l) != ixPar.MaxSize(l) {
			t.Fatalf("MaxSize mismatch: sequential index %d, parallel index %d",
				ix.MaxSize(l), ixPar.MaxSize(l))
		}
		sz, _ := MaxClusterSize(m, l)
		szPar, _ := MaxClusterSizeParallel(m, l, 3)
		if sz != szPar || sz != ix.MaxSize(l) {
			t.Fatalf("MaxClusterSize mismatch: direct %d, parallel %d, index %d",
				sz, szPar, ix.MaxSize(l))
		}
	})
}
