package cluster

import (
	"errors"
	"reflect"
	"testing"
)

// The index memoizes over a fixed host set. After a membership change
// (join/leave/fail) the forest's epoch moves, and a query against an
// index built at the old epoch must be REJECTED, not answered from
// tables describing hosts that no longer exist.
func TestFindAtRejectsStaleIndex(t *testing.T) {
	m := lineMetric(0, 1, 2, 10, 11)
	ix, err := NewIndexAt(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Epoch(); got != 7 {
		t.Fatalf("Epoch() = %d, want 7", got)
	}

	// Matching epoch: identical to Find.
	want, err := ix.Find(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.FindAt(7, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FindAt(matching epoch) = %v, want %v", got, want)
	}

	// Stale epoch (membership moved on): rejected with ErrStaleIndex,
	// even though the memoized answer is sitting in the cache.
	members, err := ix.FindAt(8, 3, 2)
	if err == nil {
		t.Fatalf("FindAt(stale epoch) answered %v, want error", members)
	}
	if !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("FindAt(stale epoch) error = %v, want ErrStaleIndex", err)
	}
	// Older epochs are just as stale as newer ones.
	if _, err := ix.FindAt(6, 3, 2); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("FindAt(older epoch) error = %v, want ErrStaleIndex", err)
	}
}

func TestNewIndexParallelAtCarriesEpoch(t *testing.T) {
	m := lineMetric(0, 1, 2, 10, 11)
	ix, err := NewIndexParallelAt(m, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Epoch(); got != 3 {
		t.Fatalf("Epoch() = %d, want 3", got)
	}
	if _, err := ix.FindAt(3, 2, 2); err != nil {
		t.Fatalf("FindAt(matching epoch) error: %v", err)
	}
	if _, err := ix.FindAt(4, 2, 2); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("FindAt(stale epoch) error = %v, want ErrStaleIndex", err)
	}
	// Plain constructors leave the tag at zero.
	plain, err := NewIndex(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Epoch(); got != 0 {
		t.Fatalf("plain index Epoch() = %d, want 0", got)
	}
}
