// Parallel execution layer for Algorithm 1. The per-pair work of the
// candidate scan — computing |S*pq| — is independent across pairs, so the
// scan shards cleanly across a worker pool (the same observation that
// makes distributed metric facility location "super-fast": per-candidate
// evaluations share no state). The only coupling is the paper's
// determinism contract: FindCluster answers with the FIRST qualifying
// pair in lexicographic (p, q) order, so a parallel scan cannot simply
// return whichever shard wins the race. Workers therefore claim rows p in
// ascending order from an atomic counter and publish hits through an
// atomic minimum row; a worker aborts as soon as a strictly smaller row
// has already hit, which cancels the tail of the scan early (the role a
// context/sync.Once pair would play, but with the ordering guarantee the
// sequential algorithm makes).
package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bwcluster/internal/metric"
)

// minParallelN is the space size under which sharding overhead outweighs
// the scan itself and the parallel entry points fall back to the
// sequential code.
const minParallelN = 64

// chunkTargetOps sizes the work-stealing chunks: a worker claims enough
// rows per atomic fetch that the chunk costs roughly this many distance
// evaluations — about 100µs of work — so the claim counter is touched a
// few thousand times per second at most, while chunks stay small enough
// that the triangular scan's shrinking rows cannot strand one worker
// with a disproportionate tail.
const chunkTargetOps = 1 << 16

// chunkRows returns how many rows of an n-row triangular pair scan a
// worker claims per fetch. The average row costs ~n²/2 evaluations
// (each of the ~n/2 pairs in a row sizes an S*pq in O(n)); the chunk is
// additionally capped at a fraction of the per-worker share so there are
// always enough chunks left to steal.
func chunkRows(n, workers int) int {
	if n <= 0 || workers <= 0 {
		return 1
	}
	perRow := n * n / 2
	if perRow < 1 {
		perRow = 1
	}
	chunk := chunkTargetOps / perRow
	if maxChunk := n / (4 * workers); chunk > maxChunk {
		chunk = maxChunk
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// Workers normalizes a worker-count knob: values < 1 mean "one worker per
// usable CPU" (GOMAXPROCS, so `go test -cpu` and container CPU limits are
// respected), and the count never exceeds n (no point idling goroutines).
func Workers(workers, n int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	return workers
}

// scanRowsParallel evaluates scan(p) for every row p in [0, n) across the
// given number of workers and returns the result of the LOWEST row that
// produced one (nil if none did) — exactly what a sequential ascending
// scan would return. scan must be safe for concurrent calls and should
// poll abort() in its inner loop: abort reports that a strictly smaller
// row already hit, making the current row's outcome irrelevant.
func scanRowsParallel(n, workers int, scan func(p int, abort func() bool) []int) []int {
	chunk := int64(chunkRows(n, workers))
	var next atomic.Int64
	var best atomic.Int64
	best.Store(int64(n))
	results := make([][]int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := next.Add(chunk) - chunk
				if lo >= int64(n) {
					return
				}
				hi := lo + chunk
				if hi > int64(n) {
					hi = int64(n)
				}
				if lo > best.Load() {
					mScanAborts.Inc()
					return
				}
				for p := int(lo); p < int(hi); p++ {
					abort := func() bool { return best.Load() < int64(p) }
					if abort() {
						mScanAborts.Inc()
						return
					}
					mScanRows.Inc()
					out := scan(p, abort)
					if out == nil && abort() {
						mScanAborts.Inc()
					}
					if out != nil {
						results[p] = out
						for {
							cur := best.Load()
							if int64(p) >= cur || best.CompareAndSwap(cur, int64(p)) {
								break
							}
						}
						// Any row this worker could still claim is larger
						// than p, hence can never win.
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if b := int(best.Load()); b < n {
		return results[b]
	}
	return nil
}

// forRowsParallel runs fn(p) for every row p in [0, n) across workers,
// with no early exit (for work that must cover all rows, like index
// builds). Workers claim chunkRows-sized row ranges from an atomic
// counter — work stealing at ~100µs granularity — so shards partition
// the row space dynamically instead of by fixed split. fn must be safe
// for concurrent calls on distinct rows.
func forRowsParallel(n, workers int, fn func(p int)) {
	if workers <= 1 {
		for p := 0; p < n; p++ {
			fn(p)
		}
		return
	}
	chunk := int64(chunkRows(n, workers))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := next.Add(chunk) - chunk
				if lo >= int64(n) {
					return
				}
				hi := lo + chunk
				if hi > int64(n) {
					hi = int64(n)
				}
				for p := int(lo); p < int(hi); p++ {
					fn(p)
				}
			}
		}()
	}
	wg.Wait()
}

// FindClusterParallel computes exactly what FindCluster computes — the
// first qualifying pair in lexicographic order answers — sharding the
// O(n^3) candidate scan across a worker pool. workers < 1 uses one worker
// per CPU. s must be safe for concurrent Dist calls (metric.Matrix is).
// Small spaces fall back to the sequential scan.
func FindClusterParallel(s metric.Space, k int, l float64, workers int) ([]int, error) {
	if err := validate(s, k, l); err != nil {
		return nil, err
	}
	n := s.N()
	workers = Workers(workers, n)
	if workers == 1 || n < minParallelN {
		return FindCluster(s, k, l)
	}
	res := scanRowsParallel(n, workers, func(p int, abort func() bool) []int {
		for q := p + 1; q < n; q++ {
			if abort() {
				return nil
			}
			if s.Dist(p, q) > l {
				continue
			}
			if countMembers(s, p, q) >= k {
				return Members(s, p, q)[:k]
			}
		}
		return nil
	})
	return res, nil
}

// MaxClusterSizeParallel computes MaxClusterSize with the pair scan
// sharded across workers. Unlike the (k, l) search there is no early
// exit: every pair within the diameter bound must be sized.
func MaxClusterSizeParallel(s metric.Space, l float64, workers int) (int, []int) {
	if s == nil || s.N() == 0 {
		return 0, nil
	}
	n := s.N()
	workers = Workers(workers, n)
	if workers == 1 || n < minParallelN {
		return MaxClusterSize(s, l)
	}
	// Per-row winners are (size, q) pairs — flat value types, no member
	// slices — and only the global winner is materialized at the end.
	type rowBest struct {
		size int32
		q    int32
	}
	rows := make([]rowBest, n)
	forRowsParallel(n, workers, func(p int) {
		best := rowBest{size: 0, q: -1}
		for q := p + 1; q < n; q++ {
			if s.Dist(p, q) > l {
				continue
			}
			if c := int32(countMembers(s, p, q)); c > best.size {
				best = rowBest{size: c, q: int32(q)}
			}
		}
		rows[p] = best
	})
	best, bp := rowBest{size: 0, q: -1}, -1
	for p := 0; p < n; p++ {
		if rows[p].size > best.size {
			best, bp = rows[p], p
		}
	}
	if best.size == 0 {
		return 1, []int{0}
	}
	return int(best.size), Members(s, bp, int(best.q))
}

// NewIndexParallel builds the same index NewIndex builds, sharding the
// O(n^3) |S*pq| precomputation across workers. workers < 1 uses one
// worker per CPU; the space must be safe for concurrent Dist calls.
func NewIndexParallel(s metric.Space, workers int) (*Index, error) {
	if s == nil {
		return nil, errNilSpace()
	}
	n := s.N()
	workers = Workers(workers, n)
	if workers == 1 || n < minParallelN {
		return NewIndex(s)
	}
	lexSizes := make([]int32, n*n)
	forRowsParallel(n, workers, func(p int) {
		for q := p + 1; q < n; q++ {
			lexSizes[p*n+q] = int32(countMembers(s, p, q))
		}
	})
	return finishIndex(s, n, lexSizes), nil
}

// NewIndexParallelAt is NewIndexParallel plus the membership-epoch tag
// NewIndexAt attaches (see FindAt for the staleness contract).
func NewIndexParallelAt(s metric.Space, workers int, epoch uint64) (*Index, error) {
	ix, err := NewIndexParallel(s, workers)
	if err != nil {
		return nil, err
	}
	ix.epoch = epoch
	return ix, nil
}

// FindParallel answers a (k, l) query like Find, sharding the candidate
// scan over the precomputed |S*pq| table across workers. Results are
// memoized in the index's query cache, so repeated queries (the serving
// pattern) cost one lock acquisition.
func (ix *Index) FindParallel(k int, l float64, workers int) ([]int, error) {
	if err := validate(ix.space, k, l); err != nil {
		return nil, err
	}
	if members, ok := ix.cached(k, l); ok {
		return members, nil
	}
	last := ix.lastWithin(l)
	if last < 0 || int(ix.prefixMax[last]) < k {
		ix.store(k, l, nil)
		return nil, nil
	}
	workers = Workers(workers, ix.n)
	var members []int
	if workers == 1 || ix.n < minParallelN {
		members = ix.scanFrom(0, k, l)
	} else {
		members = scanRowsParallel(ix.n, workers, func(p int, abort func() bool) []int {
			for q := p + 1; q < ix.n; q++ {
				if abort() {
					return nil
				}
				if int(ix.lexSizes[p*ix.n+q]) >= k && ix.space.Dist(p, q) <= l {
					return Members(ix.space, p, q)[:k]
				}
			}
			return nil
		})
	}
	ix.store(k, l, members)
	return members, nil
}
