// Parallel execution layer for Algorithm 1. The per-pair work of the
// candidate scan — computing |S*pq| — is independent across pairs, so the
// scan shards cleanly across a worker pool (the same observation that
// makes distributed metric facility location "super-fast": per-candidate
// evaluations share no state). The only coupling is the paper's
// determinism contract: FindCluster answers with the FIRST qualifying
// pair in lexicographic (p, q) order, so a parallel scan cannot simply
// return whichever shard wins the race. Workers therefore claim rows p in
// ascending order from an atomic counter and publish hits through an
// atomic minimum row; a worker aborts as soon as a strictly smaller row
// has already hit, which cancels the tail of the scan early (the role a
// context/sync.Once pair would play, but with the ordering guarantee the
// sequential algorithm makes).
package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bwcluster/internal/metric"
)

// minParallelN is the space size under which sharding overhead outweighs
// the scan itself and the parallel entry points fall back to the
// sequential code.
const minParallelN = 64

// Workers normalizes a worker-count knob: values < 1 mean "one worker per
// CPU", and the count never exceeds n (no point idling goroutines).
func Workers(workers, n int) int {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if n > 0 && workers > n {
		workers = n
	}
	return workers
}

// scanRowsParallel evaluates scan(p) for every row p in [0, n) across the
// given number of workers and returns the result of the LOWEST row that
// produced one (nil if none did) — exactly what a sequential ascending
// scan would return. scan must be safe for concurrent calls and should
// poll abort() in its inner loop: abort reports that a strictly smaller
// row already hit, making the current row's outcome irrelevant.
func scanRowsParallel(n, workers int, scan func(p int, abort func() bool) []int) []int {
	var next atomic.Int64
	var best atomic.Int64
	best.Store(int64(n))
	results := make([][]int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1) - 1)
				if p >= n {
					return
				}
				if int64(p) > best.Load() {
					mScanAborts.Inc()
					return
				}
				abort := func() bool { return best.Load() < int64(p) }
				mScanRows.Inc()
				out := scan(p, abort)
				if out == nil && abort() {
					mScanAborts.Inc()
				}
				if out != nil {
					results[p] = out
					for {
						cur := best.Load()
						if int64(p) >= cur || best.CompareAndSwap(cur, int64(p)) {
							break
						}
					}
					// Any row this worker could still claim is larger
					// than p, hence can never win.
					return
				}
			}
		}()
	}
	wg.Wait()
	if b := int(best.Load()); b < n {
		return results[b]
	}
	return nil
}

// forRowsParallel runs fn(p) for every row p in [0, n) across workers,
// with no early exit (for work that must cover all rows, like index
// builds). fn must be safe for concurrent calls on distinct rows.
func forRowsParallel(n, workers int, fn func(p int)) {
	if workers <= 1 {
		for p := 0; p < n; p++ {
			fn(p)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1) - 1)
				if p >= n {
					return
				}
				fn(p)
			}
		}()
	}
	wg.Wait()
}

// FindClusterParallel computes exactly what FindCluster computes — the
// first qualifying pair in lexicographic order answers — sharding the
// O(n^3) candidate scan across a worker pool. workers < 1 uses one worker
// per CPU. s must be safe for concurrent Dist calls (metric.Matrix is).
// Small spaces fall back to the sequential scan.
func FindClusterParallel(s metric.Space, k int, l float64, workers int) ([]int, error) {
	if err := validate(s, k, l); err != nil {
		return nil, err
	}
	n := s.N()
	workers = Workers(workers, n)
	if workers == 1 || n < minParallelN {
		return FindCluster(s, k, l)
	}
	res := scanRowsParallel(n, workers, func(p int, abort func() bool) []int {
		for q := p + 1; q < n; q++ {
			if abort() {
				return nil
			}
			if s.Dist(p, q) > l {
				continue
			}
			if members := Members(s, p, q); len(members) >= k {
				return members[:k]
			}
		}
		return nil
	})
	return res, nil
}

// MaxClusterSizeParallel computes MaxClusterSize with the pair scan
// sharded across workers. Unlike the (k, l) search there is no early
// exit: every pair within the diameter bound must be sized.
func MaxClusterSizeParallel(s metric.Space, l float64, workers int) (int, []int) {
	if s == nil || s.N() == 0 {
		return 0, nil
	}
	n := s.N()
	workers = Workers(workers, n)
	if workers == 1 || n < minParallelN {
		return MaxClusterSize(s, l)
	}
	type rowBest struct {
		size    int
		members []int
	}
	rows := make([]rowBest, n)
	forRowsParallel(n, workers, func(p int) {
		for q := p + 1; q < n; q++ {
			if s.Dist(p, q) > l {
				continue
			}
			if members := Members(s, p, q); len(members) > rows[p].size {
				rows[p] = rowBest{size: len(members), members: members}
			}
		}
	})
	best, witness := 0, []int(nil)
	for p := 0; p < n; p++ {
		if rows[p].size > best {
			best, witness = rows[p].size, rows[p].members
		}
	}
	if best == 0 {
		return 1, []int{0}
	}
	return best, witness
}

// NewIndexParallel builds the same index NewIndex builds, sharding the
// O(n^3) |S*pq| precomputation across workers. workers < 1 uses one
// worker per CPU; the space must be safe for concurrent Dist calls.
func NewIndexParallel(s metric.Space, workers int) (*Index, error) {
	if s == nil {
		return nil, errNilSpace()
	}
	n := s.N()
	workers = Workers(workers, n)
	if workers == 1 || n < minParallelN {
		return NewIndex(s)
	}
	lexSizes := make([]int, n*n)
	forRowsParallel(n, workers, func(p int) {
		for q := p + 1; q < n; q++ {
			lexSizes[p*n+q] = len(Members(s, p, q))
		}
	})
	return finishIndex(s, n, lexSizes), nil
}

// FindParallel answers a (k, l) query like Find, sharding the candidate
// scan over the precomputed |S*pq| table across workers. Results are
// memoized in the index's query cache, so repeated queries (the serving
// pattern) cost one lock acquisition.
func (ix *Index) FindParallel(k int, l float64, workers int) ([]int, error) {
	if err := validate(ix.space, k, l); err != nil {
		return nil, err
	}
	if members, ok := ix.cached(k, l); ok {
		return members, nil
	}
	last := ix.lastWithin(l)
	if last < 0 || ix.prefixMax[last] < k {
		ix.store(k, l, nil)
		return nil, nil
	}
	workers = Workers(workers, ix.n)
	var members []int
	if workers == 1 || ix.n < minParallelN {
		members = ix.scanFrom(0, k, l)
	} else {
		members = scanRowsParallel(ix.n, workers, func(p int, abort func() bool) []int {
			for q := p + 1; q < ix.n; q++ {
				if abort() {
					return nil
				}
				if ix.lexSizes[p*ix.n+q] >= k && ix.space.Dist(p, q) <= l {
					return Members(ix.space, p, q)[:k]
				}
			}
			return nil
		})
	}
	ix.store(k, l, members)
	return members, nil
}
