package cluster

import (
	"math"
	"math/rand"
	"testing"

	"bwcluster/internal/metric"
	"bwcluster/internal/testutil"
)

func TestFindNodeForSetValidation(t *testing.T) {
	m := metric.NewMatrix(3)
	if _, _, err := FindNodeForSet(nil, []int{0}, 1); err == nil {
		t.Error("nil space should fail")
	}
	if _, _, err := FindNodeForSet(m, nil, 1); err == nil {
		t.Error("empty set should fail")
	}
	if _, _, err := FindNodeForSet(m, []int{5}, 1); err == nil {
		t.Error("out-of-range member should fail")
	}
	if _, _, err := FindNodeForSet(m, []int{0}, -1); err == nil {
		t.Error("l<0 should fail")
	}
}

func TestFindNodeForSetLine(t *testing.T) {
	// Nodes at positions 0, 1, 2, 10.
	m := lineMetric(0, 1, 2, 10)
	tests := []struct {
		name    string
		set     []int
		l       float64
		want    int
		wantNil bool
	}{
		{name: "between endpoints", set: []int{0, 2}, l: 5, want: 1},
		{name: "single member", set: []int{3}, l: 100, want: 2},
		{name: "too tight", set: []int{0, 3}, l: 1, wantNil: true},
		{name: "all but one", set: []int{0, 1, 3}, l: 100, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, radius, err := FindNodeForSet(m, tt.set, tt.l)
			if err != nil {
				t.Fatal(err)
			}
			if tt.wantNil {
				if got != -1 {
					t.Fatalf("got %d, want none", got)
				}
				return
			}
			if got != tt.want {
				t.Fatalf("got %d (radius %v), want %d", got, radius, tt.want)
			}
			if radius != SetRadius(m, got, tt.set) {
				t.Errorf("radius %v inconsistent with SetRadius %v", radius, SetRadius(m, got, tt.set))
			}
		})
	}
}

// Property: the returned node minimizes the set radius among all
// qualifying candidates (brute-force cross-check on random spaces).
func TestFindNodeForSetOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(12)
		m := testutil.NoisyTreeMetric(n, 0.3, rng)
		setSize := 1 + rng.Intn(3)
		set := rng.Perm(n)[:setSize]
		vals := m.Values()
		l := vals[rng.Intn(len(vals))]
		got, radius, err := FindNodeForSet(m, set, l)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		inSet := map[int]bool{}
		for _, s := range set {
			inSet[s] = true
		}
		want, wantR := -1, math.Inf(1)
		for x := 0; x < n; x++ {
			if inSet[x] {
				continue
			}
			if r := SetRadius(m, x, set); r <= l && r < wantR {
				want, wantR = x, r
			}
		}
		if got != want {
			t.Fatalf("trial %d: got %d (r=%v), want %d (r=%v)", trial, got, radius, want, wantR)
		}
		if got >= 0 && math.Abs(radius-wantR) > 1e-12 {
			t.Fatalf("trial %d: radius %v, want %v", trial, radius, wantR)
		}
	}
}

func TestSetRadius(t *testing.T) {
	m := lineMetric(0, 5, 9)
	if r := SetRadius(m, 0, []int{1, 2}); r != 9 {
		t.Errorf("SetRadius = %v, want 9", r)
	}
	if r := SetRadius(m, 1, []int{0, 2}); r != 5 {
		t.Errorf("SetRadius = %v, want 5", r)
	}
	if r := SetRadius(m, 0, nil); !math.IsInf(r, 1) {
		t.Errorf("empty set radius = %v, want +Inf", r)
	}
}
