// Package serveapi is the serving tier's shared HTTP layer: the JSON
// query API over a built bwcluster.System, the observability middleware
// (request IDs, access logs, RED metrics), and a truthful readiness
// endpoint. bwc-serve mounts it as its whole API; bwc-fleet shards
// mount the same handler behind the fleet router, so one schema and one
// middleware stack serve both the single-process and the sharded
// deployments.
//
// A Handler is constructed empty and answers 503 (and /v1/ready:
// {"ready": false}) until SetBackend installs a built System. That
// ordering is deliberate: the serving process binds its listener first
// and builds or loads the forest second, so load balancers and the
// fleet router probe readiness during the build instead of timing out
// on connect.
package serveapi

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bwcluster"
	"bwcluster/internal/telemetry"
)

// queryTimeout bounds how long an async-routed query may wait for its
// routed answer before the request fails (and the runtime flight
// recorder logs a query_timeout anomaly).
const queryTimeout = 10 * time.Second

// Config configures a Handler. All fields are optional except Logger
// being nil falling back to slog.Default.
type Config struct {
	// Logger receives one access-log line per request.
	Logger *slog.Logger
	// Metrics is the metrics exposition handler mounted at /metrics.
	// Library code cannot touch the process registry (telemetry hygiene,
	// DESIGN.md §8c), so the serving binary passes its registry handler
	// in. Nil leaves /metrics unrouted.
	Metrics http.Handler
}

// backend is the serving state a Handler answers queries from; swapped
// in atomically by SetBackend.
type backend struct {
	sys   *bwcluster.System
	async *bwcluster.AsyncRuntime
}

// Handler serves the JSON API. A built System is safe for concurrent
// use (queries are read-only; the centralized query cache is internally
// lock-guarded), so requests are served without any serializing mutex —
// the server scales with GOMAXPROCS instead of handling one query at a
// time. The async runtime is non-nil when the backend routes
// decentralized queries through the live message-passing runtime, which
// also exposes its health monitor and flight recorder.
type Handler struct {
	h  http.Handler
	be atomic.Pointer[backend]
}

// New builds the API handler with no backend: every query endpoint
// answers 503 until SetBackend installs a built System.
func New(cfg Config) *Handler {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	h := &Handler{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", h.info)
	mux.HandleFunc("GET /v1/cluster", h.cluster)
	mux.HandleFunc("GET /v1/node", h.node)
	mux.HandleFunc("GET /v1/predict", h.predict)
	mux.HandleFunc("GET /v1/tightest", h.tightest)
	mux.HandleFunc("GET /v1/label", h.label)
	mux.HandleFunc("GET /v1/trace", h.trace)
	mux.HandleFunc("GET /v1/ready", h.ready)
	mux.HandleFunc("GET /v1/health", h.health)
	mux.HandleFunc("GET /v1/membership", h.membership)
	mux.HandleFunc("GET /v1/flight", h.flight)
	mux.HandleFunc("GET /v1/bandwidth", h.bandwidth)
	// Observability plane: metrics exposition and the stdlib profiler.
	if cfg.Metrics != nil {
		mux.Handle("GET /metrics", cfg.Metrics)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	h.h = WithObservability(logger, mux)
	return h
}

// SetBackend installs the built System (and optional async runtime) the
// handler answers from, flipping /v1/ready to true. Safe to call while
// serving; later calls replace the backend atomically (the fleet
// replica path installs each caught-up snapshot this way).
func (h *Handler) SetBackend(sys *bwcluster.System, async *bwcluster.AsyncRuntime) {
	h.be.Store(&backend{sys: sys, async: async})
}

// Ready reports whether a backend is installed.
func (h *Handler) Ready() bool { return h.be.Load() != nil }

// System returns the installed backend, nil before SetBackend.
func (h *Handler) System() *bwcluster.System {
	if be := h.be.Load(); be != nil {
		return be.sys
	}
	return nil
}

// ServeHTTP dispatches through the observability-wrapped mux.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.h.ServeHTTP(w, r) }

type errorBody struct {
	Error string `json:"error"`
}

// WriteJSON writes body as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is out can only be logged by the
	// server; the encoder writing to a ResponseWriter cannot fail for the
	// value types used here.
	_ = json.NewEncoder(w).Encode(body)
}

// BadRequest writes err as a 400 JSON error body.
func BadRequest(w http.ResponseWriter, err error) {
	WriteJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

// NotReady writes the 503 body unready endpoints answer with.
func NotReady(w http.ResponseWriter) {
	WriteJSON(w, http.StatusServiceUnavailable, errorBody{Error: "system not ready: forest still building or loading"})
}

// IntParam parses a required integer query parameter.
func IntParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, errors.New("missing required parameter " + name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, errors.New("parameter " + name + " must be an integer")
	}
	return v, nil
}

// FloatParam parses a required float query parameter.
func FloatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, errors.New("missing required parameter " + name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, errors.New("parameter " + name + " must be a number")
	}
	return v, nil
}

// ready answers the readiness probe: 200 with the backend's shape once
// a built System is installed, 503 before. Distinct from /v1/health,
// which reports the async runtime's convergence verdict — a process can
// be ready (forest loaded) while its overlay is still converging.
func (h *Handler) ready(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"ready": true,
		"hosts": be.sys.Len(),
		"epoch": be.sys.Epoch(),
		"async": be.async != nil,
	})
}

func (h *Handler) info(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	st := be.sys.Stats()
	WriteJSON(w, http.StatusOK, map[string]any{
		"hosts":          be.sys.Len(),
		"classes":        be.sys.Classes(),
		"constant":       be.sys.Constant(),
		"epoch":          be.sys.Epoch(),
		"trees":          st.Trees,
		"measurements":   st.Measurements,
		"gossipRounds":   st.GossipRounds,
		"gossipMessages": st.GossipMessages,
	})
}

type clusterBody struct {
	Members    []int   `json:"members"`
	Found      bool    `json:"found"`
	Hops       int     `json:"hops,omitempty"`
	AnsweredBy int     `json:"answeredBy,omitempty"`
	ClassMbps  float64 `json:"classMbps,omitempty"`
}

func (h *Handler) cluster(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	k, err := IntParam(r, "k")
	if err != nil {
		BadRequest(w, err)
		return
	}
	b, err := FloatParam(r, "b")
	if err != nil {
		BadRequest(w, err)
		return
	}
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "central":
		members, err := be.sys.FindCluster(k, b)
		if err != nil {
			BadRequest(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, clusterBody{Members: members, Found: members != nil})
	case "decentral":
		start := 0
		if r.URL.Query().Get("start") != "" {
			if start, err = IntParam(r, "start"); err != nil {
				BadRequest(w, err)
				return
			}
		}
		var res bwcluster.QueryResult
		if be.async != nil {
			res, err = be.async.Query(start, k, b, queryTimeout)
		} else {
			res, err = be.sys.Query(start, k, b)
		}
		if err != nil {
			BadRequest(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, clusterBody{
			Members: res.Members, Found: res.Found(),
			Hops: res.Hops, AnsweredBy: res.AnsweredBy, ClassMbps: res.Class,
		})
	default:
		BadRequest(w, errors.New("mode must be central or decentral"))
	}
}

func (h *Handler) node(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	b, err := FloatParam(r, "b")
	if err != nil {
		BadRequest(w, err)
		return
	}
	rawSet := r.URL.Query().Get("set")
	if rawSet == "" {
		BadRequest(w, errors.New("missing required parameter set"))
		return
	}
	var set []int
	for _, part := range strings.Split(rawSet, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			BadRequest(w, errors.New("set must be comma-separated host ids"))
			return
		}
		set = append(set, v)
	}
	res, err := be.sys.FindNodeForSet(set, b)
	if err != nil {
		BadRequest(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"node":           res.Node,
		"found":          res.Found(),
		"worstBandwidth": res.WorstBandwidth,
	})
}

func (h *Handler) predict(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	u, err := IntParam(r, "u")
	if err != nil {
		BadRequest(w, err)
		return
	}
	v, err := IntParam(r, "v")
	if err != nil {
		BadRequest(w, err)
		return
	}
	pred, err := be.sys.PredictBandwidth(u, v)
	if err != nil {
		BadRequest(w, err)
		return
	}
	measured, err := be.sys.MeasuredBandwidth(u, v)
	if err != nil {
		BadRequest(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"predictedMbps": pred,
		"measuredMbps":  measured,
	})
}

func (h *Handler) tightest(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	k, err := IntParam(r, "k")
	if err != nil {
		BadRequest(w, err)
		return
	}
	members, worst, err := be.sys.TightestCluster(k)
	if err != nil {
		BadRequest(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"members":        members,
		"found":          members != nil,
		"worstBandwidth": worst,
	})
}

// trace runs a decentralized query with tracing enabled and returns the
// span tree alongside the result: one child span per overlay hop with
// the peer id, the routing signal (CRT promise) and the candidate
// radius. With an async runtime the query instead travels the live
// message-passing overlay and the tree is reassembled from hop span
// events reported by every participating peer — including peers in
// other processes — with dropped reports surfacing as explicit "gap"
// spans. GET /v1/trace?k=10&b=50&start=3 (start defaults to 0).
func (h *Handler) trace(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	k, err := IntParam(r, "k")
	if err != nil {
		BadRequest(w, err)
		return
	}
	b, err := FloatParam(r, "b")
	if err != nil {
		BadRequest(w, err)
		return
	}
	start := 0
	if r.URL.Query().Get("start") != "" {
		if start, err = IntParam(r, "start"); err != nil {
			BadRequest(w, err)
			return
		}
	}
	var res bwcluster.QueryResult
	var span *telemetry.Span
	if be.async != nil {
		res, span, err = be.async.QueryTraced(start, k, b, queryTimeout)
	} else {
		res, span, err = be.sys.QueryTraced(start, k, b)
	}
	if err != nil {
		BadRequest(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"members":    res.Members,
		"found":      res.Found(),
		"hops":       res.Hops,
		"answeredBy": res.AnsweredBy,
		"classMbps":  res.Class,
		"trace":      span,
	})
}

// health answers readiness truthfully. Without an async runtime a built
// System is immediately ready (construction converged the overlay
// synchronously before the listener opened). With one the live
// runtime's convergence monitor decides: until gossip has been quiet
// for the convergence window the body reports converged=false and the
// status is 503, so load balancers and readiness probes keep traffic
// away from a server whose routing tables are still moving. The body
// always carries the full health summary (gossip-age watermark, pending
// replies, trace backlog, logical clock).
func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		WriteJSON(w, http.StatusServiceUnavailable, map[string]any{
			"mode": "loading", "converged": false,
		})
		return
	}
	if be.async == nil {
		WriteJSON(w, http.StatusOK, map[string]any{
			"mode":      "sync",
			"hosts":     be.sys.Len(),
			"converged": true,
		})
		return
	}
	hs := be.async.Health()
	status := http.StatusOK
	if !hs.Converged {
		status = http.StatusServiceUnavailable
	}
	WriteJSON(w, status, map[string]any{
		"mode":              "async",
		"hosts":             hs.Hosts,
		"converged":         hs.Converged,
		"maxGossipAgeTicks": hs.MaxGossipAgeTicks,
		"pendingReplies":    hs.PendingReplies,
		"traceBacklog":      hs.TraceBacklog,
		"ticks":             hs.Ticks,
	})
}

// membership reports who is in the cluster and how alive they are.
// Without an async runtime membership is static — the built System's
// host set, trivially all alive. With one the body is the liveness
// tracker's snapshot: per-host status (a host whose gossip has gone
// quiet past the suspicion window reports suspect, past the death
// threshold dead), the membership epoch, and the recent
// join/leave/fail/suspect/recover event log.
func (h *Handler) membership(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	if be.async == nil {
		WriteJSON(w, http.StatusOK, map[string]any{
			"mode":  "sync",
			"epoch": be.sys.Len(),
			"alive": be.sys.Len(),
		})
		return
	}
	snap := be.async.Membership()
	WriteJSON(w, http.StatusOK, map[string]any{
		"mode":    "async",
		"epoch":   snap.Epoch,
		"alive":   snap.Alive,
		"suspect": snap.Suspect,
		"dead":    snap.Dead,
		"left":    snap.Left,
		"hosts":   snap.Hosts,
		"events":  snap.Events,
	})
}

// flight snapshots the async runtime's flight recorder — the bounded
// black-box ring of structured overlay events. JSON by default;
// ?format=text renders the post-mortem dump format. Without an async
// runtime there is nothing to record, so the endpoint reports 404.
func (h *Handler) flight(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	if be.async == nil {
		WriteJSON(w, http.StatusNotFound, errorBody{Error: "flight recorder requires an async runtime"})
		return
	}
	rec := be.async.Flight()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = rec.WriteTo(w)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"cap":    rec.Cap(),
		"seq":    rec.Seq(),
		"events": rec.Snapshot(),
	})
}

// bandwidth snapshots the async runtime's bandwidth ledger: cumulative
// per-kind totals, the ring of closed accounting windows (top-K links
// with per-kind splits, actual bytes/sec joined against the prediction
// forest's link bandwidth), and the flat violation list. The ledger
// rides the runtime's transport, so without an async runtime there is
// nothing to account and the endpoint reports 404, mirroring /v1/flight.
func (h *Handler) bandwidth(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	if be.async == nil {
		WriteJSON(w, http.StatusNotFound, errorBody{Error: "bandwidth ledger requires an async runtime"})
		return
	}
	WriteJSON(w, http.StatusOK, be.async.Bandwidth())
}

func (h *Handler) label(w http.ResponseWriter, r *http.Request) {
	be := h.be.Load()
	if be == nil {
		NotReady(w)
		return
	}
	host, err := IntParam(r, "h")
	if err != nil {
		BadRequest(w, err)
		return
	}
	label, err := be.sys.DistanceLabel(host)
	if err != nil {
		BadRequest(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{"host": host, "label": label})
}
