package serveapi

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"bwcluster/internal/telemetry"
)

// HTTP-layer telemetry. Path labels come from r.URL.Path, whose
// cardinality is bounded by the mux routes (query strings are not part
// of the label).
var (
	mHTTPRequests = telemetry.NewCounterVec("bwc_http_requests_total",
		"HTTP requests served, by path and status code.",
		"path", "code")
	mHTTPSeconds = telemetry.NewHistogram("bwc_http_request_seconds",
		"HTTP request latency, all endpoints.",
		telemetry.DurationBuckets())
	mHTTPInFlight = telemetry.NewGauge("bwc_http_in_flight_requests",
		"Requests currently being served.")
)

// reqSeq numbers requests within the process; combined with the process
// start stamp it yields IDs unique across restarts without needing a
// random source (request IDs must not consume seeded randomness).
var (
	reqSeq   atomic.Uint64
	reqEpoch = time.Now().UnixNano()
)

func nextRequestID() string {
	return strconv.FormatInt(reqEpoch, 36) + "-" + strconv.FormatUint(reqSeq.Add(1), 16)
}

// statusRecorder captures the status code and body size a handler
// produced, for the access log and the per-code request counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// WithObservability wraps a handler with the serving-path telemetry:
// request IDs (echoed in X-Request-Id), an slog access log line per
// request, the request counter/latency histogram and the in-flight
// gauge. Shared by the bwc-serve API and the bwc-fleet router so every
// serving process emits the same log and metric shapes.
func WithObservability(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Honor an upstream-assigned id so one request keeps one id
		// across the router hop (the fleet router forwards its id to
		// the shard it proxies to); originate one otherwise. The id is
		// mirrored onto the request header so proxying handlers can
		// propagate it further without plumbing.
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = nextRequestID()
			r.Header.Set("X-Request-Id", id)
		}
		mHTTPInFlight.Add(1)
		defer mHTTPInFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		rec.Header().Set("X-Request-Id", id)
		next.ServeHTTP(rec, r)
		dur := time.Since(start)
		mHTTPSeconds.Observe(dur.Seconds())
		mHTTPRequests.Inc(r.URL.Path, strconv.Itoa(rec.status))
		logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"durMs", float64(dur.Microseconds())/1e3,
			"remote", r.RemoteAddr,
		)
	})
}
