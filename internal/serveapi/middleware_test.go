package serveapi

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
)

func obsWrap(next http.Handler) http.Handler {
	return WithObservability(slog.New(slog.NewTextHandler(io.Discard, nil)), next)
}

// An upstream-assigned X-Request-Id must survive the middleware: echoed
// on the response and visible to the wrapped handler, so one request
// keeps one id across the fleet router hop.
func TestObservabilityHonorsUpstreamRequestID(t *testing.T) {
	var seen string
	h := obsWrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get("X-Request-Id")
	}))
	req := httptest.NewRequest("GET", "/v1/info", nil)
	req.Header.Set("X-Request-Id", "router-abc-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "router-abc-1" {
		t.Errorf("handler saw id %q, want router-abc-1", seen)
	}
	if got := rec.Header().Get("X-Request-Id"); got != "router-abc-1" {
		t.Errorf("response echoed id %q, want router-abc-1", got)
	}
}

// Without an upstream id the middleware originates one, echoes it on the
// response, and mirrors it onto the request header so proxying handlers
// can propagate it without extra plumbing.
func TestObservabilityGeneratesRequestID(t *testing.T) {
	var seen string
	h := obsWrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get("X-Request-Id")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/info", nil))
	if seen == "" {
		t.Error("handler saw no request id")
	}
	if got := rec.Header().Get("X-Request-Id"); got == "" || got != seen {
		t.Errorf("response id %q, handler saw %q — must match and be non-empty", got, seen)
	}
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/v1/info", nil))
	if rec2.Header().Get("X-Request-Id") == rec.Header().Get("X-Request-Id") {
		t.Error("two requests got the same generated id")
	}
}

// Tenant attribution rides a pass-through header: the middleware must
// hand X-Tenant to the wrapped handler untouched (the fleet router
// forwards it shard-ward the same way).
func TestObservabilityTenantPassThrough(t *testing.T) {
	var seen string
	h := obsWrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get("X-Tenant")
	}))
	req := httptest.NewRequest("GET", "/v1/cluster", nil)
	req.Header.Set("X-Tenant", "team-blue")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if seen != "team-blue" {
		t.Errorf("handler saw tenant %q, want team-blue", seen)
	}
}

// The middleware reports the handler's status and keeps serving errors
// visible: a 404 from the mux is recorded, not rewritten.
func TestObservabilityPreservesStatus(t *testing.T) {
	h := obsWrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/missing", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
}
