package serveapi

import (
	"testing"
)

func TestRequestIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := nextRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}
