//go:build lockcheck

package lockcheck

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// Enabled reports whether the dynamic lock-order assertion is compiled
// in; true under the lockcheck build tag.
func Enabled() bool { return true }

// Mutex shadows sync.Mutex with the lock-order assertion described in
// the package comment. Lock and Unlock must be paired on the same
// goroutine (the shadow held-stack is per-goroutine; the runtime's
// locks all follow that discipline already).
type Mutex struct {
	inner sync.Mutex
	class string // set by SetClass, else derived from the first Lock site
}

// SetClass names the lock's class in the shadow order graph. Call it
// before the mutex is shared (typically in the owner's constructor).
func (m *Mutex) SetClass(c string) { m.class = c }

// heldLock is one acquisition on a goroutine's shadow stack.
type heldLock struct {
	class string
	m     *Mutex
}

// shadow is the process-wide order graph: which lock classes each live
// goroutine holds, and the first witness site of every (held → acquired)
// edge ever taken.
var shadow = struct {
	mu    sync.Mutex
	held  map[uint64][]heldLock
	order map[string]map[string]string // from → to → first witness site
}{
	held:  make(map[uint64][]heldLock),
	order: make(map[string]map[string]string),
}

// Lock acquires the mutex, panicking if this acquisition inverts the
// order any goroutine has ever taken these two lock classes in, or if
// this goroutine already holds this very mutex.
func (m *Mutex) Lock() {
	site := callSite()
	id := goid()

	shadow.mu.Lock()
	if m.class == "" {
		m.class = "anon@" + site
	}
	class := m.class
	for _, h := range shadow.held[id] {
		if h.m == m {
			shadow.mu.Unlock()
			panic(fmt.Sprintf("lockcheck: %s reacquired at %s while already held by this goroutine (sync locks are not reentrant)", class, site))
		}
		if h.class == class {
			// Sibling instance of the same class: instance order within
			// one class is below the graph's resolution.
			continue
		}
		if w := edgeWitness(class, h.class); w != "" {
			shadow.mu.Unlock()
			panic(fmt.Sprintf("lockcheck: lock-order inversion: %s acquired while holding %s at %s, but the opposite order was taken at %s", class, h.class, site, w))
		}
		if edgeWitness(h.class, class) == "" {
			setEdge(h.class, class, site)
		}
	}
	shadow.mu.Unlock()

	m.inner.Lock()

	shadow.mu.Lock()
	shadow.held[id] = append(shadow.held[id], heldLock{class: class, m: m})
	shadow.mu.Unlock()
}

// Unlock releases the mutex and pops it from the goroutine's shadow
// stack.
func (m *Mutex) Unlock() {
	id := goid()
	shadow.mu.Lock()
	stack := shadow.held[id]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].m == m {
			shadow.held[id] = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(shadow.held[id]) == 0 {
		delete(shadow.held, id)
	}
	shadow.mu.Unlock()
	m.inner.Unlock()
}

// edgeWitness returns the recorded first witness site of from → to, or
// "" if that edge has never been taken. Caller holds shadow.mu.
func edgeWitness(from, to string) string {
	return shadow.order[from][to]
}

// setEdge records the first witness of from → to. Caller holds
// shadow.mu.
func setEdge(from, to, site string) {
	m := shadow.order[from]
	if m == nil {
		m = make(map[string]string)
		shadow.order[from] = m
	}
	m[to] = site
}

// callSite renders the Lock call's file:line for witness messages.
func callSite() string {
	_, file, line, ok := runtime.Caller(2)
	if !ok {
		return "unknown"
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// goid parses the current goroutine's id from its stack header
// ("goroutine N [running]:"). Slow, which is fine: the whole point of
// the lockcheck build is to trade speed for the assertion.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseUint(string(s[:i]), 10, 64); err == nil {
			return id
		}
	}
	return 0
}
