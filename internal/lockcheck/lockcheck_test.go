package lockcheck

import (
	"sync"
	"testing"
)

// TestMutualExclusion holds in both builds: whatever the shadow layer
// does, Mutex must still be a mutex.
func TestMutualExclusion(t *testing.T) {
	var mu Mutex
	mu.SetClass("lockcheck.test.counter")
	var wg sync.WaitGroup
	counter := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8*1000 {
		t.Fatalf("counter = %d, want %d", counter, 8*1000)
	}
}

// TestConsistentNesting takes two classes in one order everywhere: the
// shadow graph must accept it silently in the lockcheck build and it is
// trivially fine in the default build.
func TestConsistentNesting(t *testing.T) {
	var outer, inner Mutex
	outer.SetClass("lockcheck.test.outer")
	inner.SetClass("lockcheck.test.inner")
	for i := 0; i < 3; i++ {
		outer.Lock()
		inner.Lock()
		inner.Unlock()
		outer.Unlock()
	}
}
