//go:build lockcheck

package lockcheck

import (
	"strings"
	"testing"
)

// mustPanic runs fn and returns the recovered panic message, failing
// the test if fn returns normally.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	msg := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg, _ = r.(string)
			}
		}()
		fn()
		t.Fatal("expected panic, got none")
	}()
	return msg
}

// TestInversionPanics is the assertion's reason to exist: taking two
// classes A→B and later B→A must panic at the second site, naming the
// first witness.
func TestInversionPanics(t *testing.T) {
	var a, b Mutex
	a.SetClass("lockcheck.test.invA")
	b.SetClass("lockcheck.test.invB")
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()

	msg := mustPanic(t, func() {
		b.Lock()
		defer b.Unlock()
		a.Lock()
		defer a.Unlock()
	})
	if !strings.Contains(msg, "lock-order inversion") || !strings.Contains(msg, "lockcheck.test.invA") {
		t.Fatalf("panic message = %q", msg)
	}
	// fn's deferred b.Unlock ran during the panic unwind, so the shadow
	// stack is clean here; a was never actually acquired.
}

// TestReacquirePanics: sync locks are not reentrant, so taking the same
// instance twice on one goroutine can only deadlock.
func TestReacquirePanics(t *testing.T) {
	var m Mutex
	m.SetClass("lockcheck.test.reentrant")
	m.Lock()
	defer m.Unlock()
	msg := mustPanic(t, func() { m.Lock() })
	if !strings.Contains(msg, "not reentrant") {
		t.Fatalf("panic message = %q", msg)
	}
}

// TestEnabled pins the build-tag wiring: this file only compiles with
// the tag, where the assertion must report itself on.
func TestEnabled(t *testing.T) {
	if !Enabled() {
		t.Fatal("Enabled() = false under the lockcheck build tag")
	}
}
