//go:build !lockcheck

package lockcheck

import "sync"

// Enabled reports whether the dynamic lock-order assertion is compiled
// in; false in the default build.
func Enabled() bool { return false }

// Mutex is a plain sync.Mutex in the default build. Embedding (rather
// than aliasing) keeps the type identical across both builds while the
// promoted methods still resolve to package sync, which is what both
// bwc-vet's concurrency check and its lockorder lock-class attribution
// key on.
type Mutex struct {
	sync.Mutex
}

// SetClass names the lock's class for the shadow order graph; a no-op
// in the default build.
func (m *Mutex) SetClass(string) {}
