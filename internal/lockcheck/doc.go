// Package lockcheck provides a mutex whose acquisitions are shadowed by
// a dynamic lock-order assertion, the runtime counterpart of bwc-vet's
// static lockorder check (DESIGN.md §8i).
//
// Without the lockcheck build tag, Mutex is a zero-overhead wrapper
// embedding sync.Mutex; the promoted Lock/Unlock keep the static
// analyzer's sync-based recognition intact, so instrumented call sites
// analyze and run exactly like plain mutexes.
//
// With `-tags lockcheck`, every Lock records the acquisition edge (held
// class → acquired class) in a global order graph and panics the
// moment a goroutine takes two lock classes in the opposite order of
// any earlier acquisition anywhere in the process — surfacing a
// potential ABBA deadlock at its first occurrence instead of waiting
// for the unlucky interleaving to wedge a soak run. Reacquiring the
// same Mutex instance (sync locks are not reentrant) panics too.
//
// The assertion is class-based: name lock classes with SetClass (for
// example "runtime.Runtime.mu") so every instance of a struct field
// shares one node in the order graph, mirroring how the static check
// classifies locks. Instances left unnamed get a per-instance class
// from their first Lock site.
package lockcheck
