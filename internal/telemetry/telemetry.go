// Package telemetry is the repo's zero-dependency observability
// subsystem: an atomic metrics registry (counters, gauges, fixed-bucket
// histograms), Prometheus text-format exposition, and lightweight trace
// spans for query routing.
//
// Design constraints, in order:
//
//   - Hot paths are lock-free. Counter.Add, Gauge.Set and
//     Histogram.Observe are a handful of atomic operations with zero
//     allocations, so instrumentation can sit inside the O(n^3)
//     candidate scans and the per-message gossip paths without becoming
//     the thing the metrics measure.
//   - Instrumentation never perturbs results. No metric touches a
//     rand.Rand or feeds back into algorithm state; the seed-determinism
//     regression tests run with telemetry enabled.
//   - Stdlib only, like the rest of the repo.
//
// Metrics register on a package-level default registry (Default) so that
// internal packages can instrument themselves without plumbing; bwc-serve
// exposes that registry at /metrics.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A metric is anything the registry can expose.
type metric interface {
	// name returns the family name (without label suffix).
	metricName() string
	// write appends the family's exposition lines (HELP/TYPE/samples).
	write(b *strings.Builder)
}

// Registry holds named metric families and renders them in Prometheus
// text format. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// std is the process-wide default registry the instrumented packages
// register on and bwc-serve exposes.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// register adds m under its name, panicking on duplicates: every family
// is registered once, from a package-level var, so a collision is a
// programming error worth failing loudly on.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.metricName()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.metrics[name] = m
}

// checkName enforces the Prometheus metric-name charset so exposition is
// always parseable.
func checkName(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
		}
	}
}

// Counter is a monotonically increasing integer. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter creates and registers a counter on the default registry.
func NewCounter(name, help string) *Counter { return std.NewCounter(name, help) }

// NewCounter creates and registers a counter on r.
func (r *Registry) NewCounter(name, help string) *Counter {
	checkName(name)
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative n panics: counters only go
// up).
func (c *Counter) Add(n int) {
	if n < 0 {
		panic("telemetry: counter decrease")
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) write(b *strings.Builder) {
	writeHeader(b, c.name, c.help, "counter")
	fmt.Fprintf(b, "%s %d\n", c.name, c.v.Load())
}

// Gauge is a float64 that can go up and down. Safe for concurrent use;
// Set is a single atomic store, Add a CAS loop.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // math.Float64bits
}

// NewGauge creates and registers a gauge on the default registry.
func NewGauge(name, help string) *Gauge { return std.NewGauge(name, help) }

// NewGauge creates and registers a gauge on r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	checkName(name)
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(b *strings.Builder) {
	writeHeader(b, g.name, g.help, "gauge")
	fmt.Fprintf(b, "%s %s\n", g.name, formatFloat(g.Value()))
}

// Histogram counts observations into fixed upper-bound buckets
// (cumulative at exposition time, Prometheus-style, with an implicit
// +Inf bucket). Observe is lock-free: one atomic add for the bucket, one
// for the count, and a CAS loop for the float sum.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds, +Inf excluded
	buckets    []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

// NewHistogram creates and registers a histogram on the default
// registry. Bounds must be strictly ascending upper bucket bounds
// (without +Inf, which is implicit).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return std.NewHistogram(name, help, bounds)
}

// NewHistogram creates and registers a histogram on r.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	checkName(name)
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1), // last = +Inf
	}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (<= ~20) and branch-predictable,
	// beating binary search at this size without allocating.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the cumulative per-bucket counts, one entry per
// bound plus the final +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) write(b *strings.Builder) {
	writeHeader(b, h.name, h.help, "histogram")
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.name, formatFloat(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", h.name, cum)
}

// CounterVec is a family of counters distinguished by one fixed label
// set. Label lookup takes a read lock and one map access; child counters
// are created on first use and cached, so steady-state increments cost a
// lock-free atomic add after a read-locked lookup.
type CounterVec struct {
	name, help string
	labels     []string

	mu       sync.RWMutex
	children map[string]*vecChild
}

type vecChild struct {
	values []string
	v      atomic.Uint64
}

// NewCounterVec creates and registers a labeled counter family on the
// default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return std.NewCounterVec(name, help, labels...)
}

// NewCounterVec creates and registers a labeled counter family on r.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	checkName(name)
	if len(labels) == 0 {
		panic("telemetry: counter vec needs at least one label")
	}
	v := &CounterVec{
		name: name, help: help,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*vecChild),
	}
	r.register(v)
	return v
}

// Inc increments the child selected by the label values (which must
// match the declared labels in number).
func (v *CounterVec) Inc(values ...string) { v.Add(1, values...) }

// Add increases the child selected by the label values by n (negative n
// panics: counters only go up).
func (v *CounterVec) Add(n int, values ...string) {
	if n < 0 {
		panic("telemetry: counter decrease")
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if !ok {
		v.mu.Lock()
		if c, ok = v.children[key]; !ok {
			c = &vecChild{values: append([]string(nil), values...)}
			v.children[key] = c
		}
		v.mu.Unlock()
	}
	c.v.Add(uint64(n))
}

// Value returns the count for one label combination (0 if never
// incremented).
func (v *CounterVec) Value(values ...string) uint64 {
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c, ok := v.children[key]; ok {
		return c.v.Load()
	}
	return 0
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) write(b *strings.Builder) {
	writeHeader(b, v.name, v.help, "counter")
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := v.children[k]
		b.WriteString(v.name)
		b.WriteByte('{')
		for i, lv := range c.values {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=\"%s\"", v.labels[i], escapeLabelValue(lv))
		}
		fmt.Fprintf(b, "} %d\n", c.v.Load())
	}
	v.mu.RUnlock()
}

// writeHeader emits the HELP/TYPE preamble of one family.
func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation; integral values without exponent).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// ExponentialBuckets returns n strictly ascending bucket bounds starting
// at start and growing by factor.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n strictly ascending bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DurationBuckets are the default latency bounds (seconds): 100µs to
// ~26s, factor 2.5 — wide enough for both in-memory scans and full
// system builds.
func DurationBuckets() []float64 { return ExponentialBuckets(100e-6, 2.5, 14) }

// HopBuckets are the default bounds for overlay hop counts; the paper's
// evaluation (Fig. 6) sees means of 2-3 hops, so single-hop resolution
// at the low end matters.
func HopBuckets() []float64 { return []float64{0, 1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32} }
