package telemetry

import (
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		// The clean common case returns the input unchanged (no alloc).
		{"gossip", "gossip"},
		{`path\to`, `path\\to`},
		{`say "hi"`, `say \"hi\"`},
		{"line1\nline2", `line1\nline2`},
		{"\\\"\n", `\\\"\n`},
		// Tabs, control bytes and non-ASCII runes pass through verbatim:
		// the exposition format only escapes backslash, quote, newline.
		{"tab\there", "tab\there"},
		{"héllo→世界", "héllo→世界"},
	}
	for _, c := range cases {
		if got := escapeLabelValue(c.in); got != c.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestExpositionEscapesHostileLabelValues feeds a label value containing
// every character the text format escapes through a real CounterVec and
// checks the rendered exposition line — a scrape of a hostile kind label
// must stay one well-formed sample line, not break the quoting or split
// the line.
func TestExpositionEscapesHostileLabelValues(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("hostile_total", "escaping test", "kind")
	v.Add(3, `a\b"c`+"\nd")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `hostile_total{kind="a\\b\"c\nd"} 3`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped sample %q:\n%s", want, out)
	}
	// The raw newline must not survive into the body: every line of the
	// output has to be a comment or a sample, never a bare fragment.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "hostile_total{") {
			continue
		}
		t.Fatalf("exposition contains a bare fragment line %q:\n%s", line, out)
	}
}
