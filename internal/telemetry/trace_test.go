package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	root := StartSpan("query")
	root.SetAttr("k", 10)
	h1 := root.Child("hop")
	h1.SetAttr("host", 3)
	h1.Finish()
	h2 := root.Child("hop")
	h2.SetAttr("host", 7)
	root.Finish() // h2 left unfinished on purpose

	if root.Name() != "query" {
		t.Errorf("Name = %q", root.Name())
	}
	if root.Attr("k") != 10 {
		t.Errorf("Attr(k) = %v", root.Attr("k"))
	}
	if root.Attr("missing") != nil {
		t.Errorf("Attr(missing) = %v", root.Attr("missing"))
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0] != h1 || kids[1] != h2 {
		t.Fatalf("Children = %v", kids)
	}
	if root.Duration() <= 0 {
		t.Error("finished root has zero duration")
	}
	// Finish propagated the parent end to the unfinished child.
	if h2.Duration() <= 0 || h2.Duration() > root.Duration() {
		t.Errorf("child duration %v vs root %v", h2.Duration(), root.Duration())
	}
}

func TestSpanFinishIdempotent(t *testing.T) {
	s := StartSpan("x")
	s.Finish()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	s.Finish()
	if s.Duration() != d {
		t.Error("second Finish changed the end time")
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	if c := s.Child("hop"); c != nil {
		t.Error("nil Child should return nil")
	}
	s.SetAttr("k", 1)
	s.Finish()
	if s.Name() != "" || s.Duration() != 0 || s.Children() != nil || s.Attrs() != nil || s.Attr("k") != nil {
		t.Error("nil span accessors not zero")
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "null" {
		t.Errorf("nil span marshals to %s", b)
	}
}

func TestSpanJSON(t *testing.T) {
	root := StartSpan("query")
	root.SetAttr("k", 4)
	root.SetAttr("found", true)
	hop := root.Child("hop")
	hop.SetAttr("host", 2)
	hop.Finish()
	root.Finish()

	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name       string         `json:"name"`
		DurationNs int64          `json:"durationNs"`
		Attrs      map[string]any `json:"attrs"`
		Children   []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, b)
	}
	if got.Name != "query" || got.DurationNs <= 0 {
		t.Errorf("root = %+v", got)
	}
	if got.Attrs["k"].(float64) != 4 || got.Attrs["found"] != true {
		t.Errorf("attrs = %v", got.Attrs)
	}
	if len(got.Children) != 1 || got.Children[0].Name != "hop" ||
		got.Children[0].Attrs["host"].(float64) != 2 {
		t.Errorf("children = %+v", got.Children)
	}
}
