package telemetry

import (
	"io"
	"net/http"
	"sort"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families sorted by name so output
// is stable for tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		r.metrics[name].write(&b)
	}
	r.mu.RUnlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeLabelValue escapes a label value per the text exposition format
// (version 0.0.4): backslash, double quote and newline — and nothing
// else. Go's %q is close but not equal (it escapes tabs, control bytes
// and non-ASCII runes Prometheus expects verbatim), so exposition writes
// its own escaping instead of fmt's.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The registry snapshot is taken under a read lock inside
		// WritePrometheus; concurrent Observe/Inc calls during a scrape are
		// fine (atomics), they just land in this scrape or the next.
		_ = r.WritePrometheus(w)
	})
}
