package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestFlightRecorderBounded proves the memory-bound claim: recording far
// more events than the capacity leaves the ring at exactly capacity,
// retaining the newest events, with oversized details truncated.
func TestFlightRecorderBounded(t *testing.T) {
	const capacity = 64
	r := NewFlightRecorder(capacity)
	r.SetClock(func() int64 { return 42 })
	huge := strings.Repeat("x", 10*maxFlightDetail)
	for i := 0; i < 10*capacity; i++ {
		r.Record("send", i, i+1, huge)
	}
	if got := r.Cap(); got != capacity {
		t.Fatalf("Cap() = %d, want %d", got, capacity)
	}
	if got := r.Seq(); got != 10*capacity {
		t.Fatalf("Seq() = %d, want %d", got, 10*capacity)
	}
	snap := r.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot holds %d events, want exactly capacity %d", len(snap), capacity)
	}
	for i, ev := range snap {
		wantSeq := uint64(9*capacity + i)
		if ev.Seq != wantSeq {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest-first, newest retained)", i, ev.Seq, wantSeq)
		}
		if len(ev.Detail) != maxFlightDetail {
			t.Fatalf("snapshot[%d] detail length %d, want truncated to %d", i, len(ev.Detail), maxFlightDetail)
		}
		if ev.UnixNano != 42 {
			t.Fatalf("snapshot[%d].UnixNano = %d, want injected clock value 42", i, ev.UnixNano)
		}
	}
}

// TestFlightRecorderPartial covers the pre-wrap window: fewer appends
// than capacity snapshot to exactly that many events.
func TestFlightRecorderPartial(t *testing.T) {
	r := NewFlightRecorder(128)
	for i := 0; i < 5; i++ {
		r.Record("recv", 1, 2, "ok")
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot holds %d events, want 5", len(snap))
	}
	for i, ev := range snap {
		if ev.Seq != uint64(i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, ev.Seq, i)
		}
	}
}

// TestFlightRecorderNil exercises every method on a nil recorder: the
// nil-safety contract instrumented code relies on.
func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.Record("send", 0, 1, "x")
	r.Anomaly("query_timeout", 0, 1, "x")
	r.SetClock(func() int64 { return 0 })
	r.SetAnomalyHook(func(FlightEvent, []FlightEvent) {})
	if r.Cap() != 0 || r.Seq() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder must report empty state")
	}
	if _, err := r.WriteTo(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteTo: %v", err)
	}
}

// TestFlightRecorderAnomalyHook checks the automatic black-box dump: the
// hook fires synchronously with the anomaly event and a snapshot that
// includes it.
func TestFlightRecorderAnomalyHook(t *testing.T) {
	r := NewFlightRecorder(32)
	var gotEv FlightEvent
	var gotSnap []FlightEvent
	calls := 0
	r.SetAnomalyHook(func(ev FlightEvent, snap []FlightEvent) {
		calls++
		gotEv, gotSnap = ev, snap
	})
	r.Record("send", 3, 4, "pre")
	r.Anomaly("reconnect_storm", 3, 4, "attempts=9")
	if calls != 1 {
		t.Fatalf("hook fired %d times, want 1", calls)
	}
	if gotEv.Kind != "reconnect_storm" || gotEv.Host != 3 || gotEv.Peer != 4 {
		t.Fatalf("hook anomaly event = %+v", gotEv)
	}
	if len(gotSnap) != 2 || gotSnap[1].Kind != "reconnect_storm" {
		t.Fatalf("hook snapshot = %+v, want 2 events ending in the anomaly", gotSnap)
	}
	r.SetAnomalyHook(nil)
	r.Anomaly("query_timeout", 0, 0, "")
	if calls != 1 {
		t.Fatal("hook fired after removal")
	}
}

// TestFlightRecorderRace stress-tests concurrent appenders, anomaly
// reporters and snapshotters under the race detector; afterwards the
// ring must still hold exactly its capacity with a coherent sequence.
func TestFlightRecorderRace(t *testing.T) {
	const capacity = 256
	r := NewFlightRecorder(capacity)
	r.SetAnomalyHook(func(FlightEvent, []FlightEvent) {})
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if i%100 == 0 {
					r.Anomaly("query_timeout", w, i, "stress")
				} else {
					r.Record("hop", w, i, "stress")
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			snap := r.Snapshot()
			for j := 1; j < len(snap); j++ {
				if snap[j].Seq != snap[j-1].Seq+1 {
					t.Errorf("snapshot not contiguous: %d then %d", snap[j-1].Seq, snap[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	if got := r.Seq(); got != writers*perWriter {
		t.Fatalf("Seq() = %d, want %d", got, writers*perWriter)
	}
	if got := len(r.Snapshot()); got != capacity {
		t.Fatalf("snapshot holds %d events, want capacity %d", got, capacity)
	}
}

// TestFlightRecorderWriteTo checks the dump line format consumed by
// /v1/flight, bwc-sim -flight-dump and the CI failure artifact.
func TestFlightRecorderWriteTo(t *testing.T) {
	r := NewFlightRecorder(8)
	r.SetClock(func() int64 { return 0 })
	r.Record("drop", 2, 5, "fault=drop")
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	line := sb.String()
	for _, want := range []string{"drop", "host=2", "peer=5", "fault=drop"} {
		if !strings.Contains(line, want) {
			t.Fatalf("dump %q missing %q", line, want)
		}
	}
}
