package telemetry

import (
	"encoding/json"
	"time"
)

// Span is one node of a query trace: a named, timed region with ordered
// key/value attributes and child spans. Spans are built by the single
// goroutine executing the traced operation and only shared after Finish,
// so they need no internal locking; the serving path creates one trace
// per request.
//
// A nil *Span is a valid no-op receiver for every method, which lets
// instrumented code thread an optional span without nil checks at every
// site — untraced queries pay one nil comparison per call.
type Span struct {
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any // int, int64, float64, bool or string
}

// StartSpan begins a new root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a sub-span; finish it before (or when) the parent
// finishes.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// SetAttr appends one attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Finish stamps the span's end time (idempotent: the first call wins).
// Unfinished children are finished with the parent's end time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	if s.end.IsZero() {
		s.end = time.Now()
	}
	for _, c := range s.children {
		if c.end.IsZero() {
			c.end = s.end
		}
	}
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end-start (0 while unfinished).
func (s *Span) Duration() time.Duration {
	if s == nil || s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Children returns the sub-spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Attrs returns the attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Attr returns the value of the first attribute with the given key, or
// nil.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// spanJSON is the wire shape of a span tree.
type spanJSON struct {
	Name       string         `json:"name"`
	DurationNs int64          `json:"durationNs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []spanJSON     `json:"children,omitempty"`
}

func (s *Span) toJSON() spanJSON {
	out := spanJSON{Name: s.name, DurationNs: s.Duration().Nanoseconds()}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.toJSON())
	}
	return out
}

// MarshalJSON renders the span tree as nested objects with name,
// durationNs, attrs and children.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.toJSON())
}
