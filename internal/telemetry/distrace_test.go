package telemetry

import (
	"testing"
)

func ev(trace, span, parent uint64, host, hop int, kind string) SpanEvent {
	return SpanEvent{
		TraceID: trace, SpanID: span, ParentID: parent,
		Host: host, Peer: host - 1, Hop: hop, Kind: kind,
		StartUnixNano: int64(hop) * 1000, DurationNs: 500, QueueNs: 10,
	}
}

// TestCollectorDedupe: duplicate deliveries of the same span id (fault
// duplication, retries) must collapse to one event.
func TestCollectorDedupe(t *testing.T) {
	c := NewTraceCollector(4)
	e := ev(7, 100, 1, 3, 0, "query")
	c.Add(e)
	c.Add(e)
	c.Add(e)
	if got := c.Count(7); got != 1 {
		t.Fatalf("Count = %d after duplicate adds, want 1", got)
	}
	evs := c.Take(7)
	if len(evs) != 1 {
		t.Fatalf("Take returned %d events, want 1", len(evs))
	}
	if c.Take(7) != nil {
		t.Fatal("second Take must return nil")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Take, want 0", c.Len())
	}
}

// TestCollectorEviction: exceeding the trace cap evicts the oldest
// trace, keeping the collector bounded.
func TestCollectorEviction(t *testing.T) {
	c := NewTraceCollector(2)
	c.Add(ev(1, 10, 0, 0, 0, "query"))
	c.Add(ev(2, 20, 0, 0, 0, "query"))
	c.Add(ev(3, 30, 0, 0, 0, "query"))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (bounded)", c.Len())
	}
	if c.Count(1) != 0 {
		t.Fatal("oldest trace 1 should have been evicted")
	}
	if c.Count(2) != 1 || c.Count(3) != 1 {
		t.Fatal("traces 2 and 3 should survive")
	}
}

// TestCollectorNil exercises the nil-receiver contract.
func TestCollectorNil(t *testing.T) {
	var c *TraceCollector
	c.Add(ev(1, 1, 0, 0, 0, "query"))
	if c.Count(1) != 0 || c.Len() != 0 || c.Take(1) != nil {
		t.Fatal("nil collector must be a no-op")
	}
}

// TestAttachEventsChain reassembles a complete three-hop chain: each hop
// becomes a child of the previous one, rooted under the origin span.
func TestAttachEventsChain(t *testing.T) {
	const root = uint64(1)
	s := StartSpan("query")
	s.AttachEvents(root, []SpanEvent{
		// Delivery order is scrambled; assembly must not care.
		ev(9, 102, 101, 4, 2, "query"),
		ev(9, 100, root, 2, 0, "query"),
		ev(9, 101, 100, 3, 1, "query"),
	})
	s.Finish()
	kids := s.Children()
	if len(kids) != 1 {
		t.Fatalf("root has %d children, want 1", len(kids))
	}
	hop0 := kids[0]
	if hop0.Attr("host") != 2 || hop0.Attr("hop") != 0 {
		t.Fatalf("hop0 attrs host=%v hop=%v", hop0.Attr("host"), hop0.Attr("hop"))
	}
	if len(hop0.Children()) != 1 || hop0.Children()[0].Attr("host") != 3 {
		t.Fatalf("hop1 missing under hop0: %+v", hop0.Children())
	}
	hop1 := hop0.Children()[0]
	if len(hop1.Children()) != 1 || hop1.Children()[0].Attr("host") != 4 {
		t.Fatalf("hop2 missing under hop1: %+v", hop1.Children())
	}
}

// TestAttachEventsGap: when the middle hop's report was dropped, its
// children must attach under an explicit "gap" span instead of
// vanishing or corrupting the tree.
func TestAttachEventsGap(t *testing.T) {
	const root = uint64(1)
	s := StartSpan("query")
	s.AttachEvents(root, []SpanEvent{
		ev(9, 100, root, 2, 0, "query"),
		// span 101 (hop 1) was dropped in flight; hops 2 and 3 arrived.
		ev(9, 102, 101, 4, 2, "query"),
		ev(9, 103, 102, 5, 3, "query"),
	})
	kids := s.Children()
	if len(kids) != 2 {
		t.Fatalf("root has %d children, want hop0 + gap", len(kids))
	}
	var gap *Span
	for _, k := range kids {
		if k.Name() == "gap" {
			gap = k
		}
	}
	if gap == nil {
		t.Fatal("no explicit gap span for the missing hop")
	}
	if gap.Attr("missingSpan") == nil {
		t.Fatal("gap span must carry the missing span id")
	}
	if len(gap.Children()) != 1 || gap.Children()[0].Attr("host") != 4 {
		t.Fatalf("orphan hop2 not under gap: %+v", gap.Children())
	}
	hop2 := gap.Children()[0]
	if len(hop2.Children()) != 1 || hop2.Children()[0].Attr("host") != 5 {
		t.Fatal("hop3 must still chain under hop2 (only the gap is synthetic)")
	}
}

// TestAttachEventsSharedGap: two orphans with the same missing parent
// share one gap span.
func TestAttachEventsSharedGap(t *testing.T) {
	const root = uint64(1)
	s := StartSpan("query")
	s.AttachEvents(root, []SpanEvent{
		ev(9, 102, 101, 4, 2, "query"),
		ev(9, 103, 101, 5, 2, "nodequery"),
	})
	kids := s.Children()
	if len(kids) != 1 || kids[0].Name() != "gap" {
		t.Fatalf("want a single shared gap child, got %d children", len(kids))
	}
	if len(kids[0].Children()) != 2 {
		t.Fatalf("gap has %d children, want both orphans", len(kids[0].Children()))
	}
}

// TestAttachEventsNilAndEmpty: nil span and empty event sets are no-ops.
func TestAttachEventsNilAndEmpty(t *testing.T) {
	var s *Span
	s.AttachEvents(1, []SpanEvent{ev(9, 100, 1, 2, 0, "query")})
	real := StartSpan("query")
	real.AttachEvents(1, nil)
	if len(real.Children()) != 0 {
		t.Fatal("empty events must attach nothing")
	}
}
