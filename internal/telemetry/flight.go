package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// maxFlightDetail bounds the free-text payload of one flight event. The
// recorder's memory use must be provable from its capacity alone, so
// every variable-length field is truncated at append time — a caller
// cannot make the ring grow by recording a huge detail string.
const maxFlightDetail = 160

// FlightEvent is one entry of the flight recorder: a structured,
// bounded-size record of something the overlay did (a send, a drop, a
// reconnect, a query hop, an anomaly). All fields are plain data so a
// snapshot can be serialized for a post-mortem artifact.
type FlightEvent struct {
	// Seq is the global append sequence number (monotonic; gaps in a
	// snapshot mean the ring wrapped and older events were evicted).
	Seq uint64 `json:"seq"`
	// UnixNano is the wall-clock append time.
	UnixNano int64 `json:"unixNano"`
	// Kind classifies the event ("send", "drop", "reconnect", "hop",
	// "anomaly", ...). Callers pass package constants so the kind set
	// stays enumerable.
	Kind string `json:"kind"`
	// Host is the local peer or process the event happened at (-1 when
	// not applicable).
	Host int `json:"host"`
	// Peer is the remote peer involved (-1 when not applicable).
	Peer int `json:"peer"`
	// Detail is free text, truncated to a fixed bound at append.
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-size black-box ring buffer of recent
// structured events. Append is O(1) under a single short mutex hold and
// never allocates after construction (the event slice is laid out once
// at capacity); the ring simply overwrites the oldest slot when full,
// so memory use is bounded by the configured capacity times the
// fixed-size event struct (details are truncated to maxFlightDetail).
//
// A nil *FlightRecorder is a valid no-op receiver for every method, so
// instrumented code can thread an optional recorder without nil checks
// at every site — unrecorded paths pay one nil comparison.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEvent // guarded by mu; fixed length == capacity
	next  uint64        // guarded by mu; total appends so far
	hook  func(FlightEvent, []FlightEvent)
	clock func() int64
}

// NewFlightRecorder returns a recorder holding the last capacity events
// (non-positive: 1024).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &FlightRecorder{
		buf:   make([]FlightEvent, capacity),
		clock: func() int64 { return time.Now().UnixNano() },
	}
}

// flightStd is the process-wide default recorder, exposed by the serving
// binaries (/v1/flight, bwc-sim -flight-dump). Library packages must not
// reach for it — they receive a recorder through explicit plumbing
// (SetFlight / config fields), which bwc-vet's telemetry check enforces.
var flightStd = NewFlightRecorder(4096)

// FlightDefault returns the process-wide flight recorder.
func FlightDefault() *FlightRecorder { return flightStd }

// SetClock replaces the recorder's timestamp source (tests inject a
// deterministic clock). The function must be safe for concurrent use.
func (r *FlightRecorder) SetClock(clock func() int64) {
	if r == nil || clock == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// SetAnomalyHook installs fn to run on every Anomaly call, receiving the
// anomaly event and a snapshot of the ring at that moment — the
// automatic black-box dump. The hook runs synchronously on the caller's
// goroutine (anomalies are rare by definition); a nil fn removes it.
func (r *FlightRecorder) SetAnomalyHook(fn func(anomaly FlightEvent, snapshot []FlightEvent)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hook = fn
	r.mu.Unlock()
}

// Cap returns the configured capacity (0 for a nil recorder).
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Seq returns the total number of events ever appended.
func (r *FlightRecorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Record appends one event, overwriting the oldest when the ring is
// full. kind should be a package constant; detail is truncated to the
// recorder's fixed per-event bound.
func (r *FlightRecorder) Record(kind string, host, peer int, detail string) {
	if r == nil {
		return
	}
	if len(detail) > maxFlightDetail {
		detail = detail[:maxFlightDetail]
	}
	r.mu.Lock()
	ev := FlightEvent{
		Seq:      r.next,
		UnixNano: r.clock(),
		Kind:     kind,
		Host:     host,
		Peer:     peer,
		Detail:   detail,
	}
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	r.mu.Unlock()
}

// Anomaly records an anomaly event ("query_timeout", "reconnect_storm",
// "fixedpoint_stall", ...) and fires the dump hook with the ring
// snapshot, giving post-mortems the black-box record leading up to the
// problem.
func (r *FlightRecorder) Anomaly(kind string, host, peer int, detail string) {
	if r == nil {
		return
	}
	if len(detail) > maxFlightDetail {
		detail = detail[:maxFlightDetail]
	}
	r.mu.Lock()
	ev := FlightEvent{
		Seq:      r.next,
		UnixNano: r.clock(),
		Kind:     kind,
		Host:     host,
		Peer:     peer,
		Detail:   detail,
	}
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	hook := r.hook
	var snap []FlightEvent
	if hook != nil {
		snap = r.snapshotLocked()
	}
	r.mu.Unlock()
	if hook != nil {
		hook(ev, snap)
	}
}

// Snapshot returns a copy of the retained events, oldest first. The
// copy's length is min(appends, capacity); the recorder itself is
// untouched, so snapshots are safe at any time including inside tests
// racing against writers.
func (r *FlightRecorder) Snapshot() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// snapshotLocked copies the live window of the ring, oldest first.
func (r *FlightRecorder) snapshotLocked() []FlightEvent {
	n := r.next
	capU := uint64(len(r.buf))
	count := n
	if count > capU {
		count = capU
	}
	out := make([]FlightEvent, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.buf[i%capU])
	}
	return out
}

// WriteTo renders the retained events as one line each (sequence,
// timestamp, kind, host, peer, detail) — the dump format used by
// /v1/flight's text mode, bwc-sim -flight-dump and the CI failure
// artifact.
func (r *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, ev := range r.Snapshot() {
		n, err := fmt.Fprintf(w, "%8d %s %-14s host=%-4d peer=%-4d %s\n",
			ev.Seq, time.Unix(0, ev.UnixNano).UTC().Format("15:04:05.000000"),
			ev.Kind, ev.Host, ev.Peer, ev.Detail)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
