package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add should panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	g.Add(0.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("Value = %v, want 2.0", got)
	}
}

func TestHistogramBucketCorrectness(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "help", []float64{1, 2, 5})
	// Placement: 0.5→le=1, 1→le=1 (bounds are inclusive upper), 1.5→le=2,
	// 5→le=5, 100→+Inf.
	for _, v := range []float64{0.5, 1, 1.5, 5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 3, 4, 5} // cumulative: le=1, le=2, le=5, +Inf
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("BucketCounts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 108 {
		t.Errorf("Sum = %v, want 108", h.Sum())
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 30.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("msgs_total", "messages", "kind")
	v.Inc("crt")
	v.Inc("crt")
	v.Inc("query")
	if got := v.Value("crt"); got != 2 {
		t.Errorf("crt = %d", got)
	}
	if got := v.Value("nodeinfo"); got != 0 {
		t.Errorf("unused child = %d, want 0", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Children sorted by label value.
	crt := strings.Index(out, `msgs_total{kind="crt"} 2`)
	query := strings.Index(out, `msgs_total{kind="query"} 1`)
	if crt < 0 || query < 0 || crt > query {
		t.Errorf("vec exposition wrong:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r.NewGauge("dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "9starts_with_digit", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", name)
				}
			}()
			NewRegistry().NewCounter(name, "")
		}()
	}
}

// TestConcurrentInstruments exercises every instrument from many
// goroutines while a reader renders exposition; run under -race this is
// the registry's thread-safety proof.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", []float64{1, 10})
	v := r.NewCounterVec("v_total", "", "kind")
	kinds := []string{"a", "b", "c"}
	const goroutines, iters = 16, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 20))
				v.Inc(kinds[j%len(kinds)])
				if j%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := g.Value(); got != goroutines*iters {
		t.Errorf("gauge = %v, want %d", got, goroutines*iters)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	var total uint64
	for _, k := range kinds {
		total += v.Value(k)
	}
	if total != goroutines*iters {
		t.Errorf("vec total = %d, want %d", total, goroutines*iters)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Errorf("ExponentialBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	want = []float64{0, 0.5, 1}
	for i := range want {
		if lin[i] != want[i] {
			t.Errorf("LinearBuckets = %v", lin)
		}
	}
	for _, bs := range [][]float64{DurationBuckets(), HopBuckets()} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Errorf("bounds not ascending: %v", bs)
			}
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:              "0",
		2:              "2",
		0.25:           "0.25",
		math.Inf(1):    "+Inf",
		math.Inf(-1):   "-Inf",
		0.000123456789: "0.000123456789",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestDefaultRegistryHasInstrumentedFamilies ensures the package-level
// wrappers land on Default.
func TestDefaultRegistryHasInstrumentedFamilies(t *testing.T) {
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	// Importing this package alone registers nothing; just confirm the
	// default registry renders without error and Default is stable.
	if Default() != std {
		t.Error("Default() is not the std registry")
	}
	_ = sb.String()
}
