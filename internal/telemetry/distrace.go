package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SpanEvent is one recorded hop of a distributed trace: a span that was
// executed on some host (possibly in another process) and reported back
// to the trace's origin as plain data. The transport layer carries a
// mirror of this struct on the wire; the collector reassembles the
// causal tree from whichever events actually arrived.
type SpanEvent struct {
	// TraceID groups events belonging to one distributed operation.
	TraceID uint64
	// SpanID uniquely identifies this hop across every participating
	// host (hosts mint ids from disjoint ranges).
	SpanID uint64
	// ParentID is the span this hop was caused by (the previous hop, or
	// the origin's root span).
	ParentID uint64
	// Host executed the hop.
	Host int
	// Peer is the hop's counterparty: the peer the message came from, or
	// -1 at the first hop.
	Peer int
	// Hop is the hop index along the forwarding path, 0-based.
	Hop int
	// Kind labels the work ("query", "nodequery", ...).
	Kind string
	// StartUnixNano is the hop's start time on the executing host's
	// clock (cross-process skew applies; durations do not suffer it).
	StartUnixNano int64
	// DurationNs is the hop's processing time.
	DurationNs int64
	// QueueNs is the time the triggering message waited between send and
	// handling (sender and receiver clocks; on one machine this is queue
	// plus wire time).
	QueueNs int64
	// Note records the hop's outcome ("answered", "forward", ...).
	Note string
}

// NewSpanEvent returns a span event keyed to a trace, span and parent;
// callers fill the descriptive fields before handing it to a collector.
// Instrumented packages must build telemetry values through package
// constructors (DESIGN.md §8c), and this is SpanEvent's.
func NewSpanEvent(traceID, spanID, parentID uint64) *SpanEvent {
	return &SpanEvent{TraceID: traceID, SpanID: spanID, ParentID: parentID}
}

// TraceCollector accumulates SpanEvents per trace until the origin
// assembles them. Both dimensions are bounded: at most maxTraces traces
// are retained (oldest evicted first) and each trace keeps at most
// maxEventsPerTrace events, so a reconnect storm of trace reports cannot
// grow the collector without bound. Duplicate deliveries of the same
// span (fault injection, at-least-once transports) are idempotently
// ignored.
//
// A nil *TraceCollector is a valid no-op receiver for every method.
type TraceCollector struct {
	maxTraces int
	maxEvents int

	mu     sync.Mutex
	traces map[uint64][]SpanEvent // guarded by mu
	seen   map[uint64]map[uint64]bool
	order  []uint64 // guarded by mu; insertion order for eviction
}

// Collector size defaults: enough for every in-flight query of a busy
// origin without letting an abandoned-trace backlog grow unbounded.
const (
	defaultMaxTraces        = 256
	defaultMaxEventsPerSpan = 1024
)

// NewTraceCollector returns a collector retaining at most maxTraces
// in-flight traces (non-positive: 256) with a fixed per-trace event cap.
func NewTraceCollector(maxTraces int) *TraceCollector {
	if maxTraces <= 0 {
		maxTraces = defaultMaxTraces
	}
	return &TraceCollector{
		maxTraces: maxTraces,
		maxEvents: defaultMaxEventsPerSpan,
		traces:    make(map[uint64][]SpanEvent),
		seen:      make(map[uint64]map[uint64]bool),
	}
}

// Add records one reported span event, deduplicating by span id and
// evicting the oldest trace when the trace cap is exceeded.
func (c *TraceCollector) Add(ev SpanEvent) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seen, ok := c.seen[ev.TraceID]
	if !ok {
		if len(c.order) >= c.maxTraces {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.traces, oldest)
			delete(c.seen, oldest)
		}
		seen = make(map[uint64]bool)
		c.seen[ev.TraceID] = seen
		c.order = append(c.order, ev.TraceID)
	}
	if seen[ev.SpanID] || len(c.traces[ev.TraceID]) >= c.maxEvents {
		return // duplicate span report or per-trace cap reached
	}
	seen[ev.SpanID] = true
	c.traces[ev.TraceID] = append(c.traces[ev.TraceID], ev)
}

// Count returns how many events have been collected for a trace.
func (c *TraceCollector) Count(traceID uint64) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces[traceID])
}

// Len returns the number of traces currently retained.
func (c *TraceCollector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}

// Take removes and returns a trace's events (nil when unknown).
func (c *TraceCollector) Take(traceID uint64) []SpanEvent {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	evs, ok := c.traces[traceID]
	if !ok {
		return nil
	}
	delete(c.traces, traceID)
	delete(c.seen, traceID)
	for i, id := range c.order {
		if id == traceID {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return evs
}

// AttachEvents reassembles collected hop events into s's span tree:
// every event becomes a child span of the event that caused it
// (ParentID), events parented on rootSpanID attach directly under s, and
// events whose parent never arrived — a dropped trace report — attach
// under an explicit "gap" span carrying the missing span id, so a lossy
// transport degrades the tree visibly instead of corrupting it.
// Children are ordered by hop index, then span id, so the tree shape is
// deterministic for a fixed event set.
func (s *Span) AttachEvents(rootSpanID uint64, events []SpanEvent) {
	if s == nil || len(events) == 0 {
		return
	}
	evs := append([]SpanEvent(nil), events...)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Hop != evs[j].Hop {
			return evs[i].Hop < evs[j].Hop
		}
		return evs[i].SpanID < evs[j].SpanID
	})
	spans := make(map[uint64]*Span, len(evs))
	for _, ev := range evs {
		hop := &Span{name: ev.Kind, start: time.Unix(0, ev.StartUnixNano)}
		hop.end = hop.start.Add(time.Duration(ev.DurationNs))
		hop.SetAttr("host", ev.Host)
		if ev.Peer >= 0 {
			hop.SetAttr("peer", ev.Peer)
		}
		hop.SetAttr("hop", ev.Hop)
		hop.SetAttr("queueNs", ev.QueueNs)
		if ev.Note != "" {
			hop.SetAttr("note", ev.Note)
		}
		spans[ev.SpanID] = hop
	}
	// gaps holds one synthetic span per missing parent, so sibling
	// orphans of the same dropped hop stay grouped.
	gaps := make(map[uint64]*Span)
	for _, ev := range evs {
		hop := spans[ev.SpanID]
		switch {
		case ev.ParentID == rootSpanID:
			s.children = append(s.children, hop)
		case spans[ev.ParentID] != nil:
			parent := spans[ev.ParentID]
			parent.children = append(parent.children, hop)
		default:
			gap := gaps[ev.ParentID]
			if gap == nil {
				gap = &Span{name: "gap", start: hop.start, end: hop.start}
				gap.SetAttr("missingSpan", fmt.Sprintf("%#x", ev.ParentID))
				gaps[ev.ParentID] = gap
				s.children = append(s.children, gap)
			}
			gap.children = append(gap.children, hop)
		}
	}
}
