package analysis

import (
	"go/ast"
	"strings"
)

// runAPIHygiene keeps the internal API surface navigable: every exported
// top-level identifier (and exported method) in scoped packages carries
// a doc comment, and context.Context — where a function takes one — is
// the first parameter, per the standard library convention.
func runAPIHygiene(p *Pass) {
	if !p.Cfg.apiScope(p.Pkg) {
		return
	}
	for _, fn := range p.Pkg.FuncDecls() {
		checkFuncHygiene(p, fn)
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if d, ok := decl.(*ast.GenDecl); ok {
				checkGenDeclDocs(p, d)
			}
		}
	}
}

// checkFuncHygiene enforces doc comments on exported functions and
// methods (methods only when their receiver type is itself exported) and
// context-first parameter ordering on every function.
func checkFuncHygiene(p *Pass, fn *ast.FuncDecl) {
	if isExported(fn.Name.Name) && fn.Doc.Text() == "" {
		recv := receiverTypeName(fn)
		if recv == "" {
			p.Reportf(fn.Name.Pos(), "exported function %s has no doc comment", fn.Name.Name)
		} else if isExported(recv) {
			p.Reportf(fn.Name.Pos(), "exported method %s.%s has no doc comment", recv, fn.Name.Name)
		}
	}
	if fn.Type.Params == nil {
		return
	}
	for i, field := range fn.Type.Params.List {
		if i == 0 {
			continue
		}
		if sel, ok := field.Type.(*ast.SelectorExpr); ok {
			if pkgPath, ok := selectorPackage(p.Pkg.Info, sel); ok && pkgPath == "context" && sel.Sel.Name == "Context" {
				p.Reportf(field.Type.Pos(),
					"context.Context must be the first parameter of %s, not parameter %d", fn.Name.Name, i+1)
			}
		}
	}
}

// checkGenDeclDocs enforces doc comments on exported types, consts and
// vars. A doc comment on the grouped declaration covers its specs (the
// `var ( … )` block idiom); a spec-level doc or trailing line comment
// also counts, mirroring what godoc renders.
func checkGenDeclDocs(p *Pass, d *ast.GenDecl) {
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if isExported(s.Name.Name) && !groupDoc && s.Doc.Text() == "" && !isDocComment(s.Comment) {
				p.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc.Text() != "" || isDocComment(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if isExported(name.Name) {
					p.Reportf(name.Pos(), "exported %s %s has no doc comment", declKind(d), name.Name)
				}
			}
		}
	}
}

// isDocComment reports whether a trailing comment group counts as
// documentation. The self-test fixtures' `// want …` expectation markers
// do not.
func isDocComment(g *ast.CommentGroup) bool {
	text := g.Text()
	return text != "" && !strings.HasPrefix(text, "want `")
}

func declKind(d *ast.GenDecl) string {
	switch d.Tok.String() {
	case "const":
		return "const"
	case "var":
		return "var"
	}
	return "declaration"
}
