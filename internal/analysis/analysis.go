// Package analysis is bwc-vet: a stdlib-only static analyzer that
// enforces the repository's codified invariants — seed determinism in the
// algorithm packages, lock discipline, telemetry hygiene and API hygiene.
// Each check is independently toggleable and reported findings carry the
// check name, so CI annotations and suppression comments can target one
// class of diagnostic at a time.
//
// A finding at a source line is suppressed by a directive comment on the
// same line or the line above:
//
//	//bwcvet:allow <check> <reason>
//
// The reason is mandatory: a suppression records an argued exception to
// an invariant (for example "wall-clock deadline; never feeds algorithm
// state"), and an unexplained one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// A Finding is one reported invariant violation.
type Finding struct {
	// Check is the name of the check that fired ("determinism", ...).
	Check string `json:"check"`
	// Pos locates the violation.
	Pos token.Position `json:"-"`
	// File, Line and Column mirror Pos for JSON output.
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	// Message describes the violation and the expected fix.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Check)
}

// Config selects which checks run and which packages they consider
// in-scope. The zero value runs nothing; use DefaultConfig.
type Config struct {
	// Enabled maps check name to whether it runs.
	Enabled map[string]bool

	// AlgorithmPackages are the import paths whose results must be
	// bit-identical for a fixed seed; the determinism check only fires
	// inside them.
	AlgorithmPackages []string

	// IOPackages are import paths that legitimately talk to the outside
	// world (sockets, timers): the determinism check still bans the
	// global math/rand stream and map-order leaks there — injected-fault
	// schedules must derive from explicit seeds — but wall-clock reads
	// are allowed, because deadlines and reconnect backoff are what an
	// I/O layer is for.
	IOPackages []string

	// InstrumentedPackages are the import paths subject to the telemetry
	// hygiene check (they start spans or register metrics).
	InstrumentedPackages []string

	// TelemetryPath is the import path of the telemetry package itself,
	// which is exempt from the determinism and telemetry checks (it is
	// the code that measures wall time on purpose).
	TelemetryPath string

	// APIPathSubstring scopes the api hygiene check: packages whose
	// import path contains this substring are checked. Empty checks all.
	APIPathSubstring string

	// FlatPackages are the import paths whose hot paths use flat arena
	// representations (DESIGN.md §8g); the arenahygiene check bans
	// pointer-linked node webs and integer-keyed map state there.
	FlatPackages []string

	// ConcurrentPackages are the import paths whose mutexes participate
	// in the interprocedural lock graph (DESIGN.md §8i): the lockorder
	// check builds its acquisition ordering and blocking-while-locked
	// analysis over exactly these.
	ConcurrentPackages []string

	// ProtocolPackages are the import paths that define or dispatch on
	// the wire protocol's message kinds; the protostate check enforces
	// switch exhaustiveness and wire-schema parity there.
	ProtocolPackages []string
}

// DefaultConfig returns the repository's canonical configuration: all
// checks on, scoped to the packages named in DESIGN.md §8d.
func DefaultConfig() *Config {
	const mod = "bwcluster"
	algo := []string{
		mod + "/internal/metric",
		mod + "/internal/predtree",
		mod + "/internal/cluster",
		mod + "/internal/kdiam",
		mod + "/internal/membership",
		mod + "/internal/overlay",
		mod + "/internal/runtime",
		mod + "/internal/sim",
		mod + "/internal/sword",
		mod + "/internal/vivaldi",
	}
	io := []string{
		mod + "/internal/transport",
		mod + "/internal/fleet",
		mod + "/internal/serveapi",
		mod + "/internal/bwledger",
	}
	instrumented := append([]string{
		mod,
		mod + "/cmd/bwc-serve",
		mod + "/internal/transport",
		mod + "/internal/fleet",
		mod + "/internal/serveapi",
	}, algo...)
	enabled := make(map[string]bool, len(Checks))
	for _, c := range Checks {
		enabled[c.Name] = true
	}
	return &Config{
		Enabled:              enabled,
		AlgorithmPackages:    algo,
		IOPackages:           io,
		InstrumentedPackages: instrumented,
		TelemetryPath:        mod + "/internal/telemetry",
		APIPathSubstring:     "/internal/",
		FlatPackages: []string{
			mod + "/internal/cluster",
			mod + "/internal/membership",
			mod + "/internal/predtree",
		},
		ConcurrentPackages: []string{
			mod + "/internal/runtime",
			mod + "/internal/transport",
			mod + "/internal/membership",
			mod + "/internal/telemetry",
			mod + "/internal/fleet",
			mod + "/internal/bwledger",
		},
		ProtocolPackages: []string{
			mod + "/internal/runtime",
			mod + "/internal/transport",
		},
	}
}

// fixtureBase returns the directory base name when pkg is a bwc-vet test
// fixture (under testdata/src). Fixture packages opt into exactly the
// check matching their name, so `bwc-vet ./internal/analysis/testdata/src/X`
// reproduces the self-tests from the command line.
func fixtureBase(pkg *Package) (string, bool) {
	i := strings.LastIndex(pkg.Path, "/testdata/src/")
	if i < 0 {
		return "", false
	}
	return pkg.Path[i+len("/testdata/src/"):], true
}

// algorithmScope reports whether pkg is one of the determinism-critical
// packages.
func (c *Config) algorithmScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "determinism" || base == "directive"
	}
	for _, p := range c.AlgorithmPackages {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// ioScope reports whether pkg is an I/O package: determinism applies in
// its seed-and-order form (global rand, map-order leaks) but wall-clock
// reads are in charter.
func (c *Config) ioScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "iodeterminism"
	}
	for _, p := range c.IOPackages {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// concurrencyScope reports whether pkg gets the lock-discipline check
// (every real package; only the matching fixture).
func (c *Config) concurrencyScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "concurrency"
	}
	return true
}

// instrumentedScope reports whether pkg is subject to telemetry hygiene.
func (c *Config) instrumentedScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "telemetryhygiene"
	}
	for _, p := range c.InstrumentedPackages {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// flightScope reports whether pkg is subject to flight-recorder hygiene
// (the instrumented packages; only the matching fixture).
func (c *Config) flightScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "flighthygiene"
	}
	for _, p := range c.InstrumentedPackages {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// arenaScope reports whether pkg is subject to flat-arena hygiene (the
// flat hot-path packages; only the matching fixture).
func (c *Config) arenaScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "arenahygiene"
	}
	for _, p := range c.FlatPackages {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// lockScope reports whether pkg's mutexes join the interprocedural lock
// graph (the concurrent packages; only the matching fixture).
func (c *Config) lockScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "lockorder"
	}
	for _, p := range c.ConcurrentPackages {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// goroScope reports whether pkg's `go` statements need provable exit
// paths (every real package; only the matching fixture).
func (c *Config) goroScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "goroleak"
	}
	return true
}

// protoScope reports whether pkg is subject to the wire-protocol state
// check (the protocol packages; only the matching fixture).
func (c *Config) protoScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "protostate"
	}
	for _, p := range c.ProtocolPackages {
		if pkg.Path == p {
			return true
		}
	}
	return false
}

// apiScope reports whether pkg gets the API hygiene check.
func (c *Config) apiScope(pkg *Package) bool {
	if base, ok := fixtureBase(pkg); ok {
		return base == "apihygiene"
	}
	return c.APIPathSubstring == "" || strings.Contains(pkg.Path, c.APIPathSubstring)
}

// A Check is one named, independently toggleable analysis pass.
type Check struct {
	// Name is the identifier used by -checks and suppression comments.
	Name string
	// Doc is a one-line description for usage output.
	Doc string
	// Run inspects one package and reports through the pass.
	Run func(*Pass)
}

// Checks lists every check in the order they run.
var Checks = []*Check{
	{Name: "determinism", Doc: "no wall clocks, global math/rand, or map-order leaks in algorithm packages", Run: runDeterminism},
	{Name: "concurrency", Doc: "Lock paired with defer Unlock across early returns; guarded-by fields read under their lock", Run: runConcurrency},
	{Name: "telemetry", Doc: "spans and metrics only via the nil-safe telemetry constructors", Run: runTelemetry},
	{Name: "flight", Doc: "flight recorders explicitly plumbed; event kinds are compile-time constants", Run: runFlight},
	{Name: "apihygiene", Doc: "exported identifiers documented; context.Context first", Run: runAPIHygiene},
	{Name: "arenahygiene", Doc: "flat hot-path packages: no pointer-linked node webs or integer-keyed map fields", Run: runArenaHygiene},
	{Name: "lockorder", Doc: "interprocedural: no lock-acquisition cycles; no blocking operations reachable while a lock is held", Run: runLockOrder},
	{Name: "goroleak", Doc: "interprocedural: every go statement has a provable exit path (done channel, context, or conditional return)", Run: runGoroLeak},
	{Name: "protostate", Doc: "interprocedural: message-kind switches are exhaustive; wire schema and clone cover every payload field", Run: runProtoState},
}

// CheckNames returns the known check names in run order.
func CheckNames() []string {
	names := make([]string, len(Checks))
	for i, c := range Checks {
		names[i] = c.Name
	}
	return names
}

// Pass carries one check's view of one package and collects findings.
type Pass struct {
	Check *Check
	Pkg   *Package
	Cfg   *Config

	suppress map[string][]directive // filename -> directives
	findings *[]Finding

	// pkgs and prog give interprocedural checks the whole run's packages
	// and the lazily built, run-shared program view (see Prog).
	pkgs []*Package
	prog **Program
}

// directive is one parsed //bwcvet:allow comment.
type directive struct {
	line   int
	check  string
	reason string
	used   bool
}

var directiveRE = regexp.MustCompile(`^//bwcvet:allow\s+(\S+)\s*(.*)$`)

// hotpathRE matches the //bwcvet:hotpath marker: a contract comment on a
// function declaring it allocation-free (enforced by the arenahygiene
// check). Like a suppression, it must carry a reason.
var hotpathRE = regexp.MustCompile(`^//bwcvet:hotpath\s*(.*)$`)

// Reportf records a finding at pos unless a matching allow directive
// covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	for i := range p.suppress[position.Filename] {
		d := &p.suppress[position.Filename][i]
		if d.check != p.Check.Name {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			d.used = true
			return
		}
	}
	*p.findings = append(*p.findings, Finding{
		Check:   p.Check.Name,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// collectDirectives parses every //bwcvet:allow comment in the package,
// reporting malformed ones (unknown check, missing reason) as findings.
func collectDirectives(pkg *Package, findings *[]Finding) map[string][]directive {
	known := make(map[string]bool)
	for _, c := range Checks {
		known[c.Name] = true
	}
	out := make(map[string][]directive)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//bwcvet:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				text := c.Text
				// The self-test fixtures append `// want …` expectation
				// markers to directive comments; they are not part of the
				// directive.
				if i := strings.Index(text, " // want "); i >= 0 {
					text = text[:i]
				}
				bad := func(msg string) {
					*findings = append(*findings, Finding{
						Check: "directive", Pos: pos,
						File: pos.Filename, Line: pos.Line, Column: pos.Column,
						Message: msg,
					})
				}
				if hm := hotpathRE.FindStringSubmatch(text); hm != nil {
					if strings.TrimSpace(hm[1]) == "" {
						bad("bwcvet:hotpath needs a reason: the marker is an allocation-free contract, and the contract says why the path is hot")
					}
					continue
				}
				m := directiveRE.FindStringSubmatch(text)
				if m == nil {
					bad("malformed bwcvet directive; want //bwcvet:allow <check> <reason> (or //bwcvet:hotpath <reason>)")
					continue
				}
				if !known[m[1]] {
					bad(fmt.Sprintf("bwcvet:allow names unknown check %q (known: %s)", m[1], strings.Join(CheckNames(), ", ")))
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad(fmt.Sprintf("bwcvet:allow %s needs a reason: a suppression is an argued exception, not a mute button", m[1]))
					continue
				}
				out[pos.Filename] = append(out[pos.Filename], directive{line: pos.Line, check: m[1], reason: m[2]})
			}
		}
	}
	return out
}

// Analyze runs every enabled check over every package and returns the
// surviving findings sorted by position.
func Analyze(pkgs []*Package, cfg *Config) []Finding {
	var findings []Finding
	// The interprocedural program is built at most once per run, the
	// first time any enabled check asks for it, and shared by the rest.
	var prog *Program
	for _, pkg := range pkgs {
		suppress := collectDirectives(pkg, &findings)
		for _, check := range Checks {
			if !cfg.Enabled[check.Name] {
				continue
			}
			pass := &Pass{Check: check, Pkg: pkg, Cfg: cfg, suppress: suppress, findings: &findings, pkgs: pkgs, prog: &prog}
			check.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Message < b.Message
	})
	return findings
}

// pathEnclosing returns the AST path from the innermost node containing
// pos outward to the file, or nil.
func pathEnclosing(f *ast.File, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	// path is outermost-first; reverse to innermost-first.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
