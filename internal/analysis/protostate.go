package analysis

// The protostate check (DESIGN.md §8i): the wire protocol's state space
// must be handled exhaustively. Three rules, scoped to the protocol
// packages (transport defines the schema, runtime dispatches on it):
//
//  1. Every switch over an integer enum type — a named type with two or
//     more package-level constants, like transport.Kind — that has no
//     default clause must cover every declared constant. Adding a Kind
//     and forgetting a dispatch arm becomes a lint error instead of a
//     silently dropped message in a soak run.
//  2. If a package declares both Message and wireMessage, the lean wire
//     schema must carry exactly the non-trace, non-snapshot fields of
//     Message — a new payload field that misses the lean frame would
//     vanish on every untraced TCP hop. Trace and snapshot state ride
//     dedicated frame tags (frameTraced, frameSnapshot) precisely so
//     their gob type descriptors stay off the per-tick gossip frames,
//     so those fields are exempt in both directions.
//  3. Message.clone must mention every reference field (pointer, slice,
//     map) of Message: a field it skips stays aliased between duplicate
//     deliveries, the exact bug class PR 4 fixed by introducing clone.
//
// The enum-constant enumeration reads the defining package's type
// information, so runtime's switches over transport.Kind are checked
// without transport being among the analyzed packages.

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

func runProtoState(p *Pass) {
	if !p.Cfg.protoScope(p.Pkg) {
		return
	}
	checkKindSwitches(p)
	checkWireParity(p)
	checkCloneCompleteness(p)
}

// enumConstants returns the package-level constants of exactly the named
// type, grouped by value (aliases count once), with names sorted for
// stable messages.
func enumConstants(named *types.Named) map[string][]string {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	byValue := make(map[string][]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		byValue[v] = append(byValue[v], name)
	}
	for _, names := range byValue {
		sort.Strings(names)
	}
	return byValue
}

// checkKindSwitches enforces rule 1 on every switch in the package.
func checkKindSwitches(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			s, ok := n.(*ast.SwitchStmt)
			if !ok || s.Tag == nil {
				return true
			}
			t := p.Pkg.Info.Types[s.Tag].Type
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsInteger == 0 {
				return true
			}
			byValue := enumConstants(named)
			if len(byValue) < 2 {
				return true
			}
			covered := make(map[string]bool)
			hasDefault := false
			for _, c := range s.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if tv := p.Pkg.Info.Types[e]; tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for v, names := range byValue {
				if !covered[v] {
					missing = append(missing, names[0])
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				typeName := named.Obj().Name()
				if named.Obj().Pkg() != nil {
					typeName = named.Obj().Pkg().Name() + "." + typeName
				}
				p.Reportf(s.Pos(), "switch over %s is not exhaustive: missing %s; handle every constant or add an explicit default",
					typeName, strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// isDedicatedFrameField reports whether the field rides only on a
// dedicated frame tag and is therefore exempt from lean-frame parity:
// its type names a Trace struct (TraceContext, TraceEvent — frameTraced)
// or the Snapshot chunk struct (frameSnapshot).
func isDedicatedFrameField(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return strings.Contains(name, "Trace") || strings.Contains(name, "Snapshot")
}

// lookupStruct finds a package-level struct type by name.
func lookupStruct(pkg *Package, name string) (types.Object, *types.Struct) {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil, nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return obj, st
}

// checkWireParity enforces rule 2: wireMessage mirrors Message's
// non-trace fields exactly, in both directions.
func checkWireParity(p *Pass) {
	_, msg := lookupStruct(p.Pkg, "Message")
	wireObj, wire := lookupStruct(p.Pkg, "wireMessage")
	if msg == nil || wire == nil {
		return
	}
	wireFields := make(map[string]bool, wire.NumFields())
	for i := 0; i < wire.NumFields(); i++ {
		wireFields[wire.Field(i).Name()] = true
	}
	msgFields := make(map[string]bool, msg.NumFields())
	for i := 0; i < msg.NumFields(); i++ {
		f := msg.Field(i)
		msgFields[f.Name()] = true
		if isDedicatedFrameField(f.Type()) {
			continue
		}
		if !wireFields[f.Name()] {
			p.Reportf(wireObj.Pos(), "wire schema wireMessage is missing non-trace Message field %s: it would be dropped on every untraced frame", f.Name())
		}
	}
	for i := 0; i < wire.NumFields(); i++ {
		if name := wire.Field(i).Name(); !msgFields[name] {
			p.Reportf(wireObj.Pos(), "wireMessage field %s does not exist in Message: the schemas have drifted apart", name)
		}
	}
}

// checkCloneCompleteness enforces rule 3: Message.clone mentions every
// reference field.
func checkCloneCompleteness(p *Pass) {
	_, msg := lookupStruct(p.Pkg, "Message")
	if msg == nil {
		return
	}
	var clone *ast.FuncDecl
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Name.Name == "clone" && receiverTypeName(fd) == "Message" {
				clone = fd
			}
		}
	}
	if clone == nil || clone.Body == nil {
		return
	}
	mentioned := make(map[string]bool)
	ast.Inspect(clone.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			mentioned[id.Name] = true
		}
		return true
	})
	var missing []string
	for i := 0; i < msg.NumFields(); i++ {
		f := msg.Field(i)
		switch f.Type().Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
			if !mentioned[f.Name()] {
				missing = append(missing, fmt.Sprintf("%s (%s)", f.Name(), f.Type()))
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		p.Reportf(clone.Pos(), "Message.clone does not copy reference field(s) %s: a duplicated delivery would alias mutable state with the original",
			strings.Join(missing, ", "))
	}
}
