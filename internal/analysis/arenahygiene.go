package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runArenaHygiene enforces the flat-memory invariant of the hot-path
// packages (DESIGN.md §8g): node state lives in index-addressed arenas
// (int32 IDs into contiguous slices), not in webs of individually
// heap-allocated node objects or integer-keyed maps. Concretely it
// reports, inside the configured flat packages only:
//
//  1. struct fields whose type points (directly or through a slice,
//     array, map or channel) at a package-local struct that can point
//     back — a pointer cycle is the signature of a linked node web, the
//     representation the arena refactor removed;
//  2. allocation sites (&T{...}, new(T)) of such cycle-participating
//     node types — one heap object per node is exactly the allocation
//     pattern the arenas exist to avoid;
//  3. struct fields holding integer-keyed maps — per-host and per-node
//     state in the flat packages is dense (host IDs are small and
//     contiguous), so a map[int]V field is a dense slice wearing a
//     hash-table coat. Transient integer-keyed maps in function bodies
//     are fine; only persistent (field) state is constrained;
//  4. any allocation — &T{...}, new(T), make(map...) — inside a function
//     whose doc comment carries a //bwcvet:hotpath marker: such a
//     function declares itself allocation-free by contract (it runs on a
//     per-tick or per-message path), so it must work in caller-provided
//     buffers and arena free-lists.
func runArenaHygiene(p *Pass) {
	if !p.Cfg.arenaScope(p.Pkg) {
		return
	}
	checkHotpathFuncs(p)
	reach := pointerReach(p.Pkg.Types)
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.TypeSpec:
				st, ok := x.Type.(*ast.StructType)
				if !ok {
					return true
				}
				obj, ok := info.Defs[x.Name].(*types.TypeName)
				if !ok {
					return true
				}
				from, ok := obj.Type().(*types.Named)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					ft := info.Types[field.Type].Type
					if ft == nil {
						continue
					}
					for _, target := range pointerTargets(ft, p.Pkg.Types) {
						if reach[target][from] {
							p.Reportf(field.Pos(),
								"field type %s links %s into a pointer-connected node web (%s -> %s -> %s); flat hot-path packages keep nodes in index-addressed arenas — int32 IDs into contiguous slices (DESIGN.md §8g)",
								types.TypeString(ft, types.RelativeTo(p.Pkg.Types)),
								from.Obj().Name(), from.Obj().Name(), target.Obj().Name(), from.Obj().Name())
							break
						}
					}
					if key := intKeyedMap(ft); key != "" {
						p.Reportf(field.Pos(),
							"integer-keyed map field (%s): per-host state in flat hot-path packages must be a dense slice indexed by host/node ID, not a map (DESIGN.md §8g)",
							types.TypeString(ft, types.RelativeTo(p.Pkg.Types)))
					}
				}
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return true
				}
				cl, ok := x.X.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if named := webbedStruct(info.Types[cl].Type, p.Pkg.Types, reach); named != nil {
					p.Reportf(x.Pos(),
						"allocates %s, a node in a pointer-connected web: flat hot-path packages allocate nodes from index-addressed arenas, not one heap object per node (DESIGN.md §8g)",
						named.Obj().Name())
				}
			case *ast.CallExpr:
				id, ok := x.Fun.(*ast.Ident)
				if !ok || id.Name != "new" || len(x.Args) != 1 {
					return true
				}
				if _, ok := info.Uses[id].(*types.Builtin); !ok {
					return true
				}
				if named := webbedStruct(info.Types[x.Args[0]].Type, p.Pkg.Types, reach); named != nil {
					p.Reportf(x.Pos(),
						"allocates %s, a node in a pointer-connected web: flat hot-path packages allocate nodes from index-addressed arenas, not one heap object per node (DESIGN.md §8g)",
						named.Obj().Name())
				}
			}
			return true
		})
	}
}

// checkHotpathFuncs reports allocation sites inside functions marked
// //bwcvet:hotpath. The marker is a contract, not a suppression: the
// function promises to be allocation-free (verified by
// testing.AllocsPerRun where practical), and the check keeps later edits
// from quietly breaking the promise.
func checkHotpathFuncs(p *Pass) {
	info := p.Pkg.Info
	for _, fd := range p.Pkg.FuncDecls() {
		if fd.Doc == nil || fd.Body == nil {
			continue
		}
		marked := false
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, "//bwcvet:hotpath") {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return true
				}
				if _, ok := x.X.(*ast.CompositeLit); ok {
					p.Reportf(x.Pos(),
						"&-literal allocation inside //bwcvet:hotpath function %s: hot-path functions are allocation-free by contract — use caller-provided buffers or arena free-lists", name)
				}
			case *ast.CallExpr:
				id, ok := x.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				switch {
				case id.Name == "new" && len(x.Args) == 1:
					p.Reportf(x.Pos(),
						"new() allocation inside //bwcvet:hotpath function %s: hot-path functions are allocation-free by contract — use caller-provided buffers or arena free-lists", name)
				case id.Name == "make" && len(x.Args) >= 1:
					if t := info.Types[x.Args[0]].Type; t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							p.Reportf(x.Pos(),
								"make(map) allocation inside //bwcvet:hotpath function %s: hot-path functions are allocation-free by contract — keep dense per-host state in reused slices", name)
						}
					}
				}
			}
			return true
		})
	}
}

// pointerReach builds the transitive pointer-containment relation over
// the package's named struct types: reach[u][t] is true when a value of
// u can lead, following any chain of pointer fields (possibly through
// slices, arrays, maps or channels), to a value of t. A field of t
// pointing at u with reach[u][t] therefore closes a cycle through t.
func pointerReach(pkg *types.Package) map[*types.Named]map[*types.Named]bool {
	scope := pkg.Scope()
	var nodes []*types.Named
	edges := make(map[*types.Named][]*types.Named)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		nodes = append(nodes, named)
		for i := 0; i < st.NumFields(); i++ {
			edges[named] = append(edges[named], pointerTargets(st.Field(i).Type(), pkg)...)
		}
	}
	reach := make(map[*types.Named]map[*types.Named]bool, len(nodes))
	for _, start := range nodes {
		seen := make(map[*types.Named]bool)
		stack := append([]*types.Named(nil), edges[start]...)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			stack = append(stack, edges[cur]...)
		}
		reach[start] = seen
	}
	return reach
}

// pointerTargets lists the package-local named struct types that t holds
// a pointer to, looking through slices, arrays, maps, channels and
// anonymous structs. Named types other than the pointed-at structs are
// not traversed: transitivity is the reachability computation's job.
func pointerTargets(t types.Type, pkg *types.Package) []*types.Named {
	var out []*types.Named
	switch u := t.(type) {
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct && named.Obj().Pkg() == pkg {
				out = append(out, named)
			}
		}
	case *types.Slice:
		out = append(out, pointerTargets(u.Elem(), pkg)...)
	case *types.Array:
		out = append(out, pointerTargets(u.Elem(), pkg)...)
	case *types.Map:
		out = append(out, pointerTargets(u.Key(), pkg)...)
		out = append(out, pointerTargets(u.Elem(), pkg)...)
	case *types.Chan:
		out = append(out, pointerTargets(u.Elem(), pkg)...)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			out = append(out, pointerTargets(u.Field(i).Type(), pkg)...)
		}
	}
	return out
}

// webbedStruct returns the named struct behind t (looking through one
// pointer) when it participates in a pointer cycle, else nil.
func webbedStruct(t types.Type, pkg *types.Package, reach map[*types.Named]map[*types.Named]bool) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pkg {
		return nil
	}
	if reach[named][named] {
		return named
	}
	return nil
}

// intKeyedMap reports (as a short key-type name) whether t is a map
// keyed by an integer type, else "".
func intKeyedMap(t types.Type) string {
	m, ok := t.(*types.Map)
	if !ok {
		return ""
	}
	basic, ok := m.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return ""
	}
	return basic.Name()
}
