package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts `// want `regex“ expectation markers (one or more per
// line, backquoted like analysistest).
var wantRE = regexp.MustCompile("// want (`[^`]+`(?:\\s+`[^`]+`)*)")

// expectation is one want marker: a finding must exist at file:line
// matching the pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseExpectations scans a fixture directory's sources for want
// markers.
func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	var out []*expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, quoted := range regexp.MustCompile("`[^`]+`").FindAllString(m[1], -1) {
				pat, err := regexp.Compile(quoted[1 : len(quoted)-1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern: %v", path, i+1, err)
				}
				out = append(out, &expectation{file: path, line: i + 1, pattern: pat})
			}
		}
	}
	return out
}

// runFixture analyzes one testdata fixture package and diffs findings
// against its want markers.
func runFixture(t *testing.T, name string) []Finding {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings := Analyze([]*Package{pkg}, DefaultConfig())
	want := parseExpectations(t, dir)
	for _, f := range findings {
		pos := fmt.Sprintf("%s:%d", f.File, f.Line)
		ok := false
		for _, w := range want {
			abs, _ := filepath.Abs(w.file)
			if abs == f.File && w.line == f.Line && w.pattern.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s: %s [%s]", pos, f.Message, f.Check)
		}
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	return findings
}

func TestDeterminismFixture(t *testing.T)      { runFixture(t, "determinism") }
func TestConcurrencyFixture(t *testing.T)      { runFixture(t, "concurrency") }
func TestTelemetryHygieneFixture(t *testing.T) { runFixture(t, "telemetryhygiene") }
func TestFlightHygieneFixture(t *testing.T)    { runFixture(t, "flighthygiene") }
func TestAPIHygieneFixture(t *testing.T)       { runFixture(t, "apihygiene") }
func TestArenaHygieneFixture(t *testing.T)     { runFixture(t, "arenahygiene") }
func TestDirectiveFixture(t *testing.T)        { runFixture(t, "directive") }
func TestIODeterminismFixture(t *testing.T)    { runFixture(t, "iodeterminism") }
func TestLockOrderFixture(t *testing.T)        { runFixture(t, "lockorder") }
func TestGoroLeakFixture(t *testing.T)         { runFixture(t, "goroleak") }
func TestProtoStateFixture(t *testing.T)       { runFixture(t, "protostate") }

// TestFixturesAllFire guards against a fixture silently matching zero
// diagnostics (e.g. a scope regression turning a check off).
func TestFixturesAllFire(t *testing.T) {
	for _, name := range []string{"determinism", "concurrency", "telemetryhygiene", "flighthygiene", "apihygiene", "arenahygiene", "directive", "iodeterminism", "lockorder", "goroleak", "protostate"} {
		t.Run(name, func(t *testing.T) {
			if got := runFixture(t, name); len(got) == 0 {
				t.Errorf("fixture %s produced no findings; its check appears disabled", name)
			}
		})
	}
}

// TestRepoIsClean runs every check over the real module: the invariants
// bwc-vet enforces must hold on the tree that ships it. This is the same
// gate CI's lint job applies via `go run ./cmd/bwc-vet ./...`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{loader.ModuleRoot() + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, f := range Analyze(pkgs, DefaultConfig()) {
		t.Errorf("%s", f)
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{loader.ModuleRoot() + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand matched testdata dir %s", d)
		}
	}
	if len(dirs) < 10 {
		t.Errorf("Expand found only %d package dirs; want the whole module", len(dirs))
	}
}

func TestLoaderModulePath(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath() != "bwcluster" {
		t.Fatalf("module path = %q, want bwcluster", loader.ModulePath())
	}
	pkg, err := loader.LoadDir(filepath.Join(loader.ModuleRoot(), "internal", "telemetry"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "bwcluster/internal/telemetry" {
		t.Fatalf("pkg path = %q", pkg.Path)
	}
	if pkg.Types.Scope().Lookup("StartSpan") == nil {
		t.Fatal("telemetry.StartSpan not found in type-checked package")
	}
}

func TestCheckNamesStable(t *testing.T) {
	got := strings.Join(CheckNames(), ",")
	const want = "determinism,concurrency,telemetry,flight,apihygiene,arenahygiene,lockorder,goroleak,protostate"
	if got != want {
		t.Fatalf("check names = %s, want %s (suppression comments and -checks flags depend on these)", got, want)
	}
}
