package analysis

// The interprocedural layer: a lightweight SSA-style program view built
// once per Analyze run and shared by every check (DESIGN.md §8i). It is
// not textbook SSA — no phi nodes, no virtual registers — but it delivers
// the two facilities the interprocedural checks need from one:
//
//   - a function index with resolved call edges: static calls resolve to
//     their one callee, interface calls resolve by class-hierarchy
//     analysis to every in-program method implementing the interface
//     (the callgraph over-approximates here), and calls through stored
//     function values resolve to nothing (it under-approximates there);
//   - per-function effect summaries in program order: which lock classes
//     a function acquires and releases, which operations may block
//     (channel sends/receives, selects without default, net/io calls,
//     WaitGroup/Cond waits), and what is held at each call site —
//     propagated transitively over the callgraph to a fixpoint.
//
// The program is built lazily on first request and cached for the rest
// of the Analyze run, so enabling all three interprocedural checks costs
// one build, not three; the loader tests assert the counter stays at one.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync/atomic"
)

// programBuilds counts Program constructions process-wide. The shared
// -cache regression test asserts one Analyze run with every
// interprocedural check enabled bumps it exactly once.
var programBuilds atomic.Int64

// ProgramBuilds returns how many times an interprocedural program has
// been constructed in this process (test hook for the shared-cache
// invariant).
func ProgramBuilds() int64 { return programBuilds.Load() }

// HeldLock is one lock class held at a program point, with the position
// of its acquisition.
type HeldLock struct {
	Class string
	Pos   token.Pos
}

// AcqSite is one lock acquisition: the class acquired, whether it is a
// read lock, and what was already held when it happened.
type AcqSite struct {
	Class string
	Read  bool
	Pos   token.Pos
	Held  []HeldLock
}

// BlockSite is one potentially blocking operation: a channel send or
// receive, a select with no default, a net/io call, or a Wait.
type BlockSite struct {
	Kind string // "channel send", "channel receive", "select", "I/O", "Wait", "sleep"
	Pos  token.Pos
	Held []HeldLock
}

// CallSite is one resolved call: the callees (empty when the target is a
// stored function value or an out-of-program function) and the lock
// classes held at the call.
type CallSite struct {
	Name    string // rendered callee for diagnostics
	Pos     token.Pos
	Held    []HeldLock
	Callees []*FuncInfo
}

// GoSite is one `go` statement: the spawned roots (the literal itself,
// or the resolved callees of the spawned call).
type GoSite struct {
	Pos   token.Pos
	Roots []*FuncInfo
}

// LoopSite is one condition-less `for {}` loop, the only loop shape the
// goroutine-leak check treats as potentially infinite, with the exit
// evidence found inside it.
type LoopSite struct {
	Pos token.Pos
	// Exit is true when the loop body contains a way out: a return, a
	// break that targets this loop, or a select/receive on a recognized
	// termination channel.
	Exit bool
	// DoneSignal is true when the exit evidence includes a termination
	// channel (done/stop/ctx.Done receive) rather than only a
	// data-dependent conditional return.
	DoneSignal bool
}

// FuncInfo is one function or function literal with its extracted
// effects. Summaries (TransAcquires, TransBlock) are filled by the
// fixpoint pass after every function's direct effects are known.
type FuncInfo struct {
	Name string // package-qualified for declarations, "<file:line func literal>" for literals
	Pkg  *Package
	Decl *ast.FuncDecl // nil for literals
	Body *ast.BlockStmt
	Pos  token.Pos

	Acquires []AcqSite
	Blocks   []BlockSite
	Calls    []CallSite
	Gos      []GoSite

	// UncondLoops are the condition-less loops of this body with their
	// per-loop exit evidence.
	UncondLoops []LoopSite

	// TransAcquires maps every lock class this function may acquire,
	// directly or transitively, to a human-readable witness chain.
	TransAcquires map[string]string
	// TransBlock is non-empty when this function may block, directly or
	// transitively; it carries the witness chain.
	TransBlock string
}

// Program is the interprocedural view over one Analyze run's packages.
type Program struct {
	Pkgs  []*Package
	Funcs map[types.Object]*FuncInfo // declared functions and methods
	ByPkg map[*Package][]*FuncInfo   // every function (incl. literals), source order

	// closedChans holds the objects (vars and fields) that appear as the
	// argument of a close() call anywhere in the program: receiving from
	// one is a termination signal.
	closedChans map[types.Object]bool

	// methodsByName indexes concrete methods for class-hierarchy
	// resolution of interface calls.
	methodsByName map[string][]*FuncInfo

	// lockorder's shared results, computed once (see lockorder.go).
	lockGraph *lockGraph
}

// Prog returns the shared interprocedural program for this Analyze run,
// building it on first use. Every check that calls Prog within one run
// observes the same instance (the "SSA cache" of DESIGN.md §8i).
func (p *Pass) Prog() *Program {
	if *p.prog == nil {
		*p.prog = buildProgram(p.pkgs)
	}
	return *p.prog
}

// FuncsOf returns every function (declarations and literals) of pkg in
// source order.
func (prog *Program) FuncsOf(pkg *Package) []*FuncInfo { return prog.ByPkg[pkg] }

// buildProgram extracts the function index, call edges and effect
// summaries from the given packages.
func buildProgram(pkgs []*Package) *Program {
	programBuilds.Add(1)
	prog := &Program{
		Pkgs:          pkgs,
		Funcs:         make(map[types.Object]*FuncInfo),
		ByPkg:         make(map[*Package][]*FuncInfo),
		closedChans:   make(map[types.Object]bool),
		methodsByName: make(map[string][]*FuncInfo),
	}
	// Pass 1: index declared functions and collect close() targets, so
	// call resolution and done-channel classification can see the whole
	// program before any body is scanned.
	for _, pkg := range pkgs {
		for _, fd := range pkg.FuncDecls() {
			if fd.Body == nil {
				continue
			}
			obj := pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			name := pkg.Types.Name() + "." + fd.Name.Name
			if fd.Recv != nil {
				if rt := receiverTypeName(fd); rt != "" {
					name = pkg.Types.Name() + "." + rt + "." + fd.Name.Name
				}
			}
			fi := &FuncInfo{Name: name, Pkg: pkg, Decl: fd, Body: fd.Body, Pos: fd.Pos()}
			prog.Funcs[obj] = fi
			prog.ByPkg[pkg] = append(prog.ByPkg[pkg], fi)
			if fd.Recv != nil {
				prog.methodsByName[fd.Name.Name] = append(prog.methodsByName[fd.Name.Name], fi)
			}
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "close" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					if obj := chanObj(pkg.Info, call.Args[0]); obj != nil {
						prog.closedChans[obj] = true
					}
				}
				return true
			})
		}
	}
	// Pass 2: scan every body (literals are discovered and scanned as
	// they appear), then close the summaries over the callgraph.
	for _, pkg := range pkgs {
		for _, fi := range prog.ByPkg[pkg] {
			if fi.Decl != nil {
				prog.scanFunc(fi)
			}
		}
	}
	prog.closeSummaries()
	return prog
}

// chanObj resolves e to the variable or field object of a channel-typed
// expression, nil when it is not a plain identifier/selector.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.ParenExpr:
		return chanObj(info, x.X)
	}
	return nil
}

// doneNameRE-equivalent: name-based fallback for termination channels.
func doneLikeName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range []string{"stop", "done", "quit", "close", "exit", "gone"} {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// isDoneChan reports whether receiving from e is a termination signal:
// the channel object is close()d somewhere in the program, its name says
// so, or it is ctx.Done().
func (prog *Program) isDoneChan(info *types.Info, e ast.Expr) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true // ctx.Done() and conventionally-named accessors
		}
		return false
	}
	obj := chanObj(info, e)
	if obj == nil {
		return false
	}
	return prog.closedChans[obj] || doneLikeName(obj.Name())
}

// scanState carries the in-order walk state through one function body.
type scanState struct {
	prog *Program
	fi   *FuncInfo
	held []HeldLock // acquisition-ordered
}

// scanFunc extracts fi's direct effects with an in-order walk of its
// body. The walk tracks the held-lock set linearly in source order —
// sound for the repo's lock discipline (Lock/defer-Unlock or
// straight-line pairs, enforced by the concurrency check) and documented
// as an over-approximation for branch-local locking.
func (prog *Program) scanFunc(fi *FuncInfo) {
	st := &scanState{prog: prog, fi: fi}
	st.walkStmt(fi.Body)
}

// heldCopy snapshots the current held set.
func (st *scanState) heldCopy() []HeldLock {
	if len(st.held) == 0 {
		return nil
	}
	return append([]HeldLock(nil), st.held...)
}

func (st *scanState) acquire(class string, read bool, pos token.Pos) {
	st.fi.Acquires = append(st.fi.Acquires, AcqSite{Class: class, Read: read, Pos: pos, Held: st.heldCopy()})
	st.held = append(st.held, HeldLock{Class: class, Pos: pos})
}

func (st *scanState) release(class string) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].Class == class {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return
		}
	}
}

// lockClassOf renders the static lock class of a mutex operand: the
// owning named type and field for `x.mu`, the package-qualified name for
// a package-level or local mutex variable.
func lockClassOf(pkg *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// x.Sel is the mutex field; qualify it by the owner's named type.
		t := pkg.Info.Types[x.X].Type
		if t != nil {
			if named, ok := derefType(t).(*types.Named); ok {
				owner := named.Obj()
				q := owner.Name()
				if owner.Pkg() != nil {
					q = owner.Pkg().Name() + "." + q
				}
				return q + "." + x.Sel.Name
			}
		}
		return renderExpr(x)
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + x.Name
		}
		return x.Name
	case *ast.ParenExpr:
		return lockClassOf(pkg, x.X)
	}
	return renderExpr(e)
}

// mutexOpOn decodes call as a sync (or lockcheck-wrapped) mutex method
// with one of the given names, returning the receiver expression.
func mutexOpOn(info *types.Info, call *ast.CallExpr, names ...string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return nil, false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return nil, false
	}
	obj := selection.Obj()
	if obj.Pkg() == nil {
		return nil, false
	}
	switch obj.Pkg().Path() {
	case "sync", "bwcluster/internal/lockcheck":
		return sel.X, true
	}
	return nil, false
}

// walkStmt processes one statement (recursing into nested blocks) in
// source order, updating the held set and recording effects.
func (st *scanState) walkStmt(n ast.Node) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.BlockStmt:
		for _, stmt := range s.List {
			st.walkStmt(stmt)
		}
	case *ast.ExprStmt:
		st.walkExpr(s.X)
	case *ast.SendStmt:
		st.walkExpr(s.Chan)
		st.walkExpr(s.Value)
		st.fi.Blocks = append(st.fi.Blocks, BlockSite{Kind: "channel send", Pos: s.Pos(), Held: st.heldCopy()})
	case *ast.GoStmt:
		st.goStmt(s)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// body, which plain (non-releasing) tracking already models; any
		// other deferred call is treated as a call at this point.
		if _, ok := mutexOpOn(st.fi.Pkg.Info, s.Call, "Unlock", "RUnlock"); ok {
			for _, arg := range s.Call.Args {
				st.walkExpr(arg)
			}
			return
		}
		st.callExpr(s.Call, true)
	case *ast.SelectStmt:
		st.selectStmt(s)
	case *ast.RangeStmt:
		st.walkExpr(s.X)
		if t := st.fi.Pkg.Info.Types[s.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				st.fi.Blocks = append(st.fi.Blocks, BlockSite{Kind: "channel receive", Pos: s.Pos(), Held: st.heldCopy()})
			}
		}
		st.walkStmt(s.Body)
	case *ast.IfStmt:
		st.walkStmt(s.Init)
		st.walkExpr(s.Cond)
		st.walkStmt(s.Body)
		st.walkStmt(s.Else)
	case *ast.ForStmt:
		st.walkStmt(s.Init)
		st.walkExpr(s.Cond)
		if s.Cond == nil {
			exit, done := st.prog.stmtExit(st.fi.Pkg, s.Body, true)
			st.fi.UncondLoops = append(st.fi.UncondLoops, LoopSite{Pos: s.Pos(), Exit: exit, DoneSignal: done})
		}
		st.walkStmt(s.Body)
		st.walkStmt(s.Post)
	case *ast.SwitchStmt:
		st.walkStmt(s.Init)
		st.walkExpr(s.Tag)
		st.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		st.walkStmt(s.Init)
		st.walkStmt(s.Assign)
		st.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			st.walkExpr(e)
		}
		for _, stmt := range s.Body {
			st.walkStmt(stmt)
		}
	case *ast.CommClause:
		// Reached only via a non-select path (defensive); selectStmt
		// handles the real ones.
		for _, stmt := range s.Body {
			st.walkStmt(stmt)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st.walkExpr(e)
		}
		for _, e := range s.Lhs {
			st.walkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st.walkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st.walkExpr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		st.walkExpr(s.X)
	}
}

// selectStmt records the select's blocking classification and walks the
// clause bodies. A select with a default never blocks; one without may
// block indefinitely, so it is a block site.
func (st *scanState) selectStmt(s *ast.SelectStmt) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		st.fi.Blocks = append(st.fi.Blocks, BlockSite{Kind: "select", Pos: s.Pos(), Held: st.heldCopy()})
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		// Walk nested calls in the channel expression (e.g. ticker.C
		// needs no walk, but f().ch would); the comm receive itself is
		// not an independent blocking op — the select is the unit.
		if recvExpr := commRecvExpr(cc.Comm); recvExpr != nil {
			st.walkExpr(recvExpr)
		}
		for _, stmt := range cc.Body {
			st.walkStmt(stmt)
		}
	}
}

// commRecvExpr extracts the received-from channel expression of a comm
// clause, nil for sends.
func commRecvExpr(s ast.Stmt) ast.Expr {
	switch c := s.(type) {
	case *ast.ExprStmt:
		if u, ok := c.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			if u, ok := c.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// goStmt registers the spawn site and its root functions. Literal roots
// are scanned as their own functions with an empty held set — a new
// goroutine holds nothing its parent held.
func (st *scanState) goStmt(s *ast.GoStmt) {
	site := GoSite{Pos: s.Pos()}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		site.Roots = append(site.Roots, st.prog.litFunc(st.fi.Pkg, lit))
	} else {
		for _, callee := range st.prog.resolveCallees(st.fi.Pkg, s.Call) {
			site.Roots = append(site.Roots, callee)
		}
	}
	for _, arg := range s.Call.Args {
		st.walkExpr(arg)
	}
	st.fi.Gos = append(st.fi.Gos, site)
}

// litFunc returns (building on first use) the FuncInfo for a function
// literal.
func (prog *Program) litFunc(pkg *Package, lit *ast.FuncLit) *FuncInfo {
	for _, fi := range prog.ByPkg[pkg] {
		if fi.Decl == nil && fi.Pos == lit.Pos() {
			return fi
		}
	}
	pos := pkg.Fset.Position(lit.Pos())
	fi := &FuncInfo{
		Name: fmt.Sprintf("%s func literal at %s:%d", pkg.Types.Name(), shortFile(pos.Filename), pos.Line),
		Pkg:  pkg, Body: lit.Body, Pos: lit.Pos(),
	}
	prog.ByPkg[pkg] = append(prog.ByPkg[pkg], fi)
	prog.scanFunc(fi)
	return fi
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// walkExpr processes one expression in order, recording channel ops,
// mutex ops, calls and nested literals.
func (st *scanState) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		st.callExpr(x, true)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			st.fi.Blocks = append(st.fi.Blocks, BlockSite{Kind: "channel receive", Pos: x.Pos(), Held: st.heldCopy()})
		}
		st.walkExpr(x.X)
	case *ast.FuncLit:
		// A literal not spawned via `go` still gets its own FuncInfo; if
		// it is immediately invoked the enclosing CallExpr records the
		// call edge.
		st.prog.litFunc(st.fi.Pkg, x)
	case *ast.BinaryExpr:
		st.walkExpr(x.X)
		st.walkExpr(x.Y)
	case *ast.ParenExpr:
		st.walkExpr(x.X)
	case *ast.SelectorExpr:
		st.walkExpr(x.X)
	case *ast.IndexExpr:
		st.walkExpr(x.X)
		st.walkExpr(x.Index)
	case *ast.SliceExpr:
		st.walkExpr(x.X)
		st.walkExpr(x.Low)
		st.walkExpr(x.High)
		st.walkExpr(x.Max)
	case *ast.StarExpr:
		st.walkExpr(x.X)
	case *ast.TypeAssertExpr:
		st.walkExpr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			st.walkExpr(el)
		}
	case *ast.KeyValueExpr:
		st.walkExpr(x.Value)
	}
}

// stdBlocking classifies calls into out-of-program code that can block:
// network and stream I/O, WaitGroup/Cond waits, and sleeps.
func stdBlocking(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgPath, ok := selectorPackage(info, sel); ok {
		switch pkgPath {
		case "io":
			switch sel.Sel.Name {
			case "ReadFull", "ReadAll", "Copy", "CopyN", "WriteString":
				return "I/O", true
			}
		case "net":
			switch sel.Sel.Name {
			case "Dial", "DialTimeout", "Listen":
				return "I/O", true
			}
		case "time":
			if sel.Sel.Name == "Sleep" {
				return "sleep", true
			}
		}
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	obj := selection.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "sync":
		if sel.Sel.Name == "Wait" {
			return "Wait", true
		}
	case "net":
		switch sel.Sel.Name {
		case "Read", "Write", "Accept":
			return "I/O", true
		}
	}
	return "", false
}

// callExpr handles one call: mutex ops mutate the held set, resolvable
// calls become call sites, known std blockers become block sites.
func (st *scanState) callExpr(call *ast.CallExpr, walkFun bool) {
	info := st.fi.Pkg.Info
	if recv, ok := mutexOpOn(info, call, "Lock", "RLock"); ok {
		sel := call.Fun.(*ast.SelectorExpr)
		st.acquire(lockClassOf(st.fi.Pkg, recv), sel.Sel.Name == "RLock", call.Pos())
		return
	}
	if recv, ok := mutexOpOn(info, call, "Unlock", "RUnlock"); ok {
		st.release(lockClassOf(st.fi.Pkg, recv))
		return
	}
	if kind, ok := stdBlocking(info, call); ok {
		st.fi.Blocks = append(st.fi.Blocks, BlockSite{Kind: kind, Pos: call.Pos(), Held: st.heldCopy()})
	}
	// Immediately-invoked literal: an ordinary call edge into it.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		st.fi.Calls = append(st.fi.Calls, CallSite{
			Name: "func literal", Pos: call.Pos(), Held: st.heldCopy(),
			Callees: []*FuncInfo{st.prog.litFunc(st.fi.Pkg, lit)},
		})
	} else if callees := st.prog.resolveCallees(st.fi.Pkg, call); len(callees) > 0 {
		st.fi.Calls = append(st.fi.Calls, CallSite{
			Name: renderExpr(call.Fun), Pos: call.Pos(), Held: st.heldCopy(), Callees: callees,
		})
	}
	if walkFun {
		// Visit nested calls/literals in the function expression and
		// arguments (skip for `go`/`defer`, whose caller walks args).
		if _, isLit := call.Fun.(*ast.FuncLit); !isLit {
			st.walkExpr(call.Fun)
		}
		for _, arg := range call.Args {
			st.walkExpr(arg)
		}
	}
}

// resolveCallees maps a call expression to its possible in-program
// callees: one for a static function or concrete-method call, every
// implementing method for an interface call (class-hierarchy analysis),
// none for function values.
func (prog *Program) resolveCallees(pkg *Package, call *ast.CallExpr) []*FuncInfo {
	info := pkg.Info
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if fi := prog.Funcs[types.Object(fn)]; fi != nil {
				return []*FuncInfo{fi}
			}
		}
	case *ast.SelectorExpr:
		if selection, ok := info.Selections[fun]; ok && selection.Kind() == types.MethodVal {
			recv := selection.Recv()
			if _, isIface := recv.Underlying().(*types.Interface); isIface {
				return prog.implementations(recv.Underlying().(*types.Interface), fun.Sel.Name)
			}
			if fn, ok := selection.Obj().(*types.Func); ok {
				if fi := prog.Funcs[types.Object(fn)]; fi != nil {
					return []*FuncInfo{fi}
				}
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if fi := prog.Funcs[types.Object(fn)]; fi != nil {
				return []*FuncInfo{fi}
			}
		}
	}
	return nil
}

// implementations returns every in-program concrete method with the
// given name whose receiver type implements iface.
func (prog *Program) implementations(iface *types.Interface, method string) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range prog.methodsByName[method] {
		obj := fi.Pkg.Info.Defs[fi.Decl.Name]
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(derefType(rt)), iface) {
			out = append(out, fi)
		}
	}
	return out
}

// stmtExit scans a condition-less loop's body for ways out. exit is true
// when the subtree contains a return, or a break that targets the loop
// (breakable tracks whether an unlabeled break at this nesting level
// still does — it stops doing so inside a nested loop, select or
// switch). done is true when the subtree receives from a recognized
// termination channel (closed in-program, done/stop-named, or a Done()
// accessor) — the "tied to a context/done-channel/Close" evidence the
// goroutine-leak check prefers to see. Function literals are opaque:
// their returns do not exit this loop.
func (prog *Program) stmtExit(pkg *Package, s ast.Stmt, breakable bool) (exit, done bool) {
	merge := func(e, d bool) { exit = exit || e; done = done || d }
	body := func(stmts []ast.Stmt, breakable bool) {
		for _, st := range stmts {
			merge(prog.stmtExit(pkg, st, breakable))
		}
	}
	recvDone := func(e ast.Expr) bool {
		u, ok := e.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW && prog.isDoneChan(pkg.Info, u.X)
	}
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true, false
	case *ast.BranchStmt:
		if x.Tok == token.BREAK && (breakable || x.Label != nil) {
			return true, false
		}
	case *ast.BlockStmt:
		body(x.List, breakable)
	case *ast.IfStmt:
		merge(prog.stmtExit(pkg, x.Body, breakable))
		if x.Else != nil {
			merge(prog.stmtExit(pkg, x.Else, breakable))
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if recvExpr := commRecvExpr(cc.Comm); recvExpr != nil && prog.isDoneChan(pkg.Info, recvExpr) {
				done = true
			}
			body(cc.Body, false)
		}
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				body(cc.Body, false)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				body(cc.Body, false)
			}
		}
	case *ast.ForStmt:
		merge(prog.stmtExit(pkg, x.Body, false))
	case *ast.RangeStmt:
		merge(prog.stmtExit(pkg, x.Body, false))
	case *ast.LabeledStmt:
		merge(prog.stmtExit(pkg, x.Stmt, breakable))
	case *ast.ExprStmt:
		if recvDone(x.X) {
			done = true
		}
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			if recvDone(r) {
				done = true
			}
		}
	}
	return
}

// closeSummaries propagates acquire and block effects over the callgraph
// to a fixpoint.
func (prog *Program) closeSummaries() {
	var all []*FuncInfo
	for _, pkg := range prog.Pkgs {
		all = append(all, prog.ByPkg[pkg]...)
	}
	for _, fi := range all {
		fi.TransAcquires = make(map[string]string)
		for _, a := range fi.Acquires {
			if _, ok := fi.TransAcquires[a.Class]; !ok {
				fi.TransAcquires[a.Class] = fi.Name
			}
		}
		for _, b := range fi.Blocks {
			if fi.TransBlock == "" {
				fi.TransBlock = fmt.Sprintf("%s (%s at %s)", fi.Name, b.Kind, posString(fi.Pkg, b.Pos))
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range all {
			for _, c := range fi.Calls {
				for _, callee := range c.Callees {
					for class, chain := range callee.TransAcquires {
						if _, ok := fi.TransAcquires[class]; !ok {
							fi.TransAcquires[class] = fi.Name + " → " + chain
							changed = true
						}
					}
					if callee.TransBlock != "" && fi.TransBlock == "" {
						fi.TransBlock = fi.Name + " → " + callee.TransBlock
						changed = true
					}
				}
			}
		}
	}
}

// posString renders pos as file:line relative to the package directory.
func posString(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
}

// transitiveSet returns roots plus every function statically reachable
// from them.
func transitiveSet(roots []*FuncInfo) []*FuncInfo {
	seen := make(map[*FuncInfo]bool)
	var out []*FuncInfo
	var visit func(fi *FuncInfo)
	visit = func(fi *FuncInfo) {
		if fi == nil || seen[fi] {
			return
		}
		seen[fi] = true
		out = append(out, fi)
		for _, c := range fi.Calls {
			for _, callee := range c.Callees {
				visit(callee)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}

// sortedClasses returns the lock classes of held in a stable order for
// messages.
func sortedClasses(held []HeldLock) []string {
	out := make([]string, len(held))
	for i, h := range held {
		out[i] = h.Class
	}
	sort.Strings(out)
	return out
}
