package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit every check
// operates on.
type Package struct {
	// Path is the package's import path ("bwcluster/internal/metric").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files holds the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object tables.
	Info *types.Info

	funcDecls []*ast.FuncDecl // lazy cache behind FuncDecls
}

// FuncDecls returns the package's function and method declarations in
// file order, computed once and shared by every check and by the
// interprocedural Program index — one canonical list instead of each
// pass re-discovering declarations with its own AST walk. Bodiless
// declarations (assembly stubs) are included; callers that need a body
// filter themselves.
func (pkg *Package) FuncDecls() []*ast.FuncDecl {
	if pkg.funcDecls == nil {
		pkg.funcDecls = []*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pkg.funcDecls = append(pkg.funcDecls, fd)
				}
			}
		}
	}
	return pkg.funcDecls
}

// Loader discovers, parses and type-checks the module's packages using
// nothing but the standard library: module-local imports are resolved
// from source relative to go.mod, everything else through the toolchain's
// source importer (which reads GOROOT/src).
type Loader struct {
	Fset *token.FileSet

	// IncludeTests makes _test.go files part of the analyzed package.
	// Checks default to production sources only: tests may freely use
	// wall clocks and unseeded randomness.
	IncludeTests bool

	modRoot  string
	modPath  string
	std      types.Importer
	buildCtx build.Context
	loaded   map[string]*Package // by import path
	loading  map[string]bool     // import-cycle guard
	checked  int                 // packages type-checked (cache-sharing tests)
}

// NewLoader returns a Loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		modRoot:  root,
		modPath:  path,
		std:      importer.ForCompiler(fset, "source", nil),
		buildCtx: build.Default,
		loaded:   make(map[string]*Package),
		loading:  make(map[string]bool),
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// Loaded returns every module package this loader has parsed and
// type-checked so far (explicitly loaded dirs and transitive module
// imports), sorted by import path.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.loaded))
	for _, pkg := range l.loaded {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Checked returns how many packages this loader has type-checked. Each
// package is checked at most once per loader, which is what keeps one
// bwc-vet run a single build; the loader tests assert this stays true.
func (l *Loader) Checked() int { return l.checked }

// findModule walks up from dir to the enclosing go.mod and extracts the
// module path from its first "module" directive.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

// Expand resolves command-line package patterns into package directories.
// Supported forms are "./..." (every package under dir, recursively),
// "dir/..." and plain directory paths; testdata, vendor and dot
// directories are skipped by the recursive forms.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: expand %q: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir (and, transitively,
// every module package it imports).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.modRoot)
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// Import implements types.Importer so the checker can resolve the
// module's own import paths from source; everything else is delegated to
// the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.load(path, filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints the way the compiler does: a file
		// excluded from the default build (e.g. the lockcheck-tagged
		// shadow assertion) would otherwise collide with its enabled
		// counterpart and fail the whole package's type check.
		if ok, err := l.buildCtx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	// Test files may belong to an external "_test" package; keep only the
	// dominant (first file's) package to stay a single compilation unit.
	pkgName := files[0].Name.Name
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	l.checked++
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	return pkg, nil
}
