package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// selectorPackage resolves sel's qualifier to an imported package path:
// for `time.Now`, it returns ("time", true); for method selections or
// field accesses it returns ("", false).
func selectorPackage(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pkgName.Imported().Path(), true
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// renderExpr prints an identifier / selector / star chain the way it
// appears in source ("p.mu", "*t.cache"); other expression kinds render
// as "?".
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	case *ast.ParenExpr:
		return renderExpr(x.X)
	}
	return "?"
}

// fileOf returns the package file containing pos.
func fileOf(p *Pass, pos token.Pos) *ast.File {
	for _, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// typeFromPackage reports whether t (after pointer stripping) is a named
// type declared in the package with the given import path.
func typeFromPackage(t types.Type, path string) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == path
}

// receiverTypeName returns the name of the receiver's base type for a
// method declaration ("Tree" for `func (t *Tree) …`), or "".
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// isExported mirrors ast.IsExported but tolerates blank names.
func isExported(name string) bool {
	return name != "_" && ast.IsExported(name)
}

// commentContains reports whether any comment line in g contains substr
// (case-insensitive).
func commentContains(g *ast.CommentGroup, substr string) bool {
	if g == nil {
		return false
	}
	return strings.Contains(strings.ToLower(g.Text()), strings.ToLower(substr))
}
