package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// runFlight enforces the flight-recorder contract (DESIGN.md §8f):
// the black-box ring must stay bounded, enumerable and test-attachable.
// Concretely: (1) library (internal/) packages must not reach for
// telemetry.FlightDefault() — recorders arrive through explicit
// plumbing (SetFlight, config fields), so tests can attach their own
// ring and only the serving binaries own the process-wide one; (2) the
// kind argument of Record and Anomaly must be a compile-time constant —
// a run-time-built kind explodes the kind set a post-mortem reader greps
// through (variable payload belongs in the detail argument, which is
// truncated at append).
func runFlight(p *Pass) {
	if !p.Cfg.flightScope(p.Pkg) || p.Pkg.Path == p.Cfg.TelemetryPath {
		return
	}
	info := p.Pkg.Info
	libraryPkg := strings.Contains(p.Pkg.Path, "/internal/")
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			x, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if libraryPkg {
				if pkgPath, ok := selectorPackage(info, sel); ok && pkgPath == p.Cfg.TelemetryPath && sel.Sel.Name == "FlightDefault" {
					p.Reportf(x.Pos(),
						"library packages must not touch telemetry.FlightDefault(): flight recorders arrive through explicit plumbing (SetFlight, config fields); only serving binaries own the process ring")
					return true
				}
			}
			if (sel.Sel.Name == "Record" || sel.Sel.Name == "Anomaly") && len(x.Args) > 0 {
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.MethodVal {
					return true
				}
				named, isNamed := derefType(s.Recv()).(*types.Named)
				if !isNamed || named.Obj().Name() != "FlightRecorder" || !typeFromPackage(named, p.Cfg.TelemetryPath) {
					return true
				}
				if tv, ok := info.Types[x.Args[0]]; !ok || tv.Value == nil {
					p.Reportf(x.Args[0].Pos(),
						"flight event kinds must be compile-time constants so the kind set stays enumerable; put the label in a package const and variable payload in the detail argument")
				}
			}
			return true
		})
	}
}
