package analysis

// The goroleak check (DESIGN.md §8i): every `go` statement must have a
// provable exit path. The analyzer takes the spawned function (a literal
// or resolved callee), walks everything statically reachable from it
// through the shared call graph, and demands that every condition-less
// `for {}` loop in that set contains a way out: a `return`, a `break`
// targeting the loop, or — the preferred evidence — a select case or
// receive on a termination channel (one that is close()d somewhere in
// the program, named like done/stop/quit, or produced by a Done()
// accessor such as context.Context's). Loops with a condition are
// assumed to terminate (data-dependent bounds are beyond a static
// check), and a `go` statement whose target cannot be resolved at all —
// a stored function value — is reported, because an exit path that
// cannot be found cannot be reviewed. Suppress a deliberate
// process-lifetime goroutine with //bwcvet:allow goroleak <reason> on
// the go statement.

func runGoroLeak(p *Pass) {
	if !p.Cfg.goroScope(p.Pkg) {
		return
	}
	prog := p.Prog()
	for _, fi := range prog.FuncsOf(p.Pkg) {
		for _, g := range fi.Gos {
			if len(g.Roots) == 0 {
				p.Reportf(g.Pos, "go statement spawns a function value the analyzer cannot resolve; spawn a named function or literal so its exit path is provable")
				continue
			}
			for _, reached := range transitiveSet(g.Roots) {
				for _, loop := range reached.UncondLoops {
					if loop.Exit {
						continue
					}
					detail := "no return, loop break, or done-channel case"
					if loop.DoneSignal {
						detail = "it receives a termination signal but never returns or breaks on it"
					}
					p.Reportf(g.Pos, "goroutine never provably exits: unconditional loop at %s (in %s) has %s; select on a done channel or context and return",
						posString(reached.Pkg, loop.Pos), reached.Name, detail)
				}
			}
		}
	}
}
