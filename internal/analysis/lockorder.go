package analysis

// The lockorder check (DESIGN.md §8i): interprocedural lock-acquisition
// ordering over the concurrent packages. It derives a static lock graph
// from the shared program view — an edge A → B for every site that
// acquires lock class B while A is held, directly or through any chain
// of resolved calls — and reports two classes of hazard:
//
//   - acquisition cycles: a strongly connected component in the lock
//     graph means two code paths can take the same locks in opposite
//     orders, the classic ABBA deadlock;
//   - blocking while locked: a channel send/receive, default-less
//     select, net/io call or Wait reachable while any lock is held can
//     stall every other goroutine contending for that lock — and
//     deadlock outright if the unblocking party needs it.
//
// The analysis over-approximates (a branch-local acquisition is treated
// as ordered with everything after it in the function; interface calls
// fan out to every implementation) and under-approximates (calls through
// stored function values are invisible), per DESIGN.md §8i; findings are
// suppressed with //bwcvet:allow lockorder <reason> at the reported site.

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// lockEdge is one observed ordering: `to` acquired while `from` held.
type lockEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
	witness  string // call chain for transitive acquisitions, "" for direct
}

// progFinding is a program-level finding attributed to the package that
// owns its position, so each Pass reports (and suppresses) only its own.
type progFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// lockGraph is the run-shared result of the lock-order analysis.
type lockGraph struct {
	findings []progFinding
}

func runLockOrder(p *Pass) {
	if !p.Cfg.lockScope(p.Pkg) {
		return
	}
	prog := p.Prog()
	if prog.lockGraph == nil {
		prog.lockGraph = buildLockGraph(prog, p.Cfg)
	}
	for _, f := range prog.lockGraph.findings {
		if f.pkg == p.Pkg {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// buildLockGraph computes the whole-program lock-order findings once per
// run; each package's pass then reports its own slice of them.
func buildLockGraph(prog *Program, cfg *Config) *lockGraph {
	g := &lockGraph{}
	var scoped []*FuncInfo
	for _, pkg := range prog.Pkgs {
		if !cfg.lockScope(pkg) {
			continue
		}
		scoped = append(scoped, prog.ByPkg[pkg]...)
	}

	// Collect ordering edges: direct nested acquisitions, and held-lock
	// call sites whose callees transitively acquire.
	var edges []lockEdge
	for _, fi := range scoped {
		for _, a := range fi.Acquires {
			for _, h := range a.Held {
				edges = append(edges, lockEdge{from: h.Class, to: a.Class, pkg: fi.Pkg, pos: a.Pos})
			}
		}
		for _, c := range fi.Calls {
			if len(c.Held) == 0 {
				continue
			}
			for _, callee := range c.Callees {
				for class, chain := range callee.TransAcquires {
					for _, h := range c.Held {
						edges = append(edges, lockEdge{from: h.Class, to: class, pkg: fi.Pkg, pos: c.Pos, witness: chain})
					}
				}
			}
		}
	}

	// Re-acquiring a class already held is a self-deadlock hazard on its
	// own (sync mutexes are not reentrant), reported without needing a
	// cycle partner.
	firstEdge := make(map[[2]string]lockEdge, len(edges))
	for _, e := range edges {
		if e.from == e.to {
			msg := fmt.Sprintf("acquires %s while %s is already held (sync locks are not reentrant)", e.to, e.from)
			if e.witness != "" {
				msg += " via " + e.witness
			}
			g.findings = append(g.findings, progFinding{pkg: e.pkg, pos: e.pos, msg: msg})
			continue
		}
		key := [2]string{e.from, e.to}
		if old, ok := firstEdge[key]; !ok || e.pos < old.pos {
			firstEdge[key] = e
		}
	}

	// Cycle detection: an edge whose endpoints share a multi-node
	// strongly connected component is part of an ABBA inversion. (Each
	// node alone can't cycle — self-edges were peeled off above.)
	sccOf, sccMembers := stronglyConnected(firstEdge)
	var cycleEdges []lockEdge
	for key, e := range firstEdge {
		if id := sccOf[key[0]]; id == sccOf[key[1]] && len(sccMembers[id]) > 1 {
			cycleEdges = append(cycleEdges, e)
		}
	}
	sort.Slice(cycleEdges, func(i, j int) bool { return cycleEdges[i].pos < cycleEdges[j].pos })
	for _, e := range cycleEdges {
		classes := append([]string(nil), sccMembers[sccOf[e.from]]...)
		sort.Strings(classes)
		msg := fmt.Sprintf("lock-acquisition cycle among {%s}: acquiring %s while holding %s inverts the order taken elsewhere", strings.Join(classes, ", "), e.to, e.from)
		if e.witness != "" {
			msg += " (via " + e.witness + ")"
		}
		g.findings = append(g.findings, progFinding{pkg: e.pkg, pos: e.pos, msg: msg})
	}

	// Blocking while locked: direct block sites with a non-empty held
	// set, and held-lock calls into anything that may transitively block.
	for _, fi := range scoped {
		for _, b := range fi.Blocks {
			if len(b.Held) == 0 {
				continue
			}
			g.findings = append(g.findings, progFinding{
				pkg: fi.Pkg, pos: b.Pos,
				msg: fmt.Sprintf("potentially blocking %s while holding %s; release the lock first or make the operation non-blocking", b.Kind, strings.Join(sortedClasses(b.Held), ", ")),
			})
		}
		for _, c := range fi.Calls {
			if len(c.Held) == 0 {
				continue
			}
			for _, callee := range c.Callees {
				if callee.TransBlock == "" {
					continue
				}
				g.findings = append(g.findings, progFinding{
					pkg: fi.Pkg, pos: c.Pos,
					msg: fmt.Sprintf("call to %s may block (%s) while holding %s", c.Name, callee.TransBlock, strings.Join(sortedClasses(c.Held), ", ")),
				})
				break // one report per call site is enough
			}
		}
	}
	sort.Slice(g.findings, func(i, j int) bool { return g.findings[i].pos < g.findings[j].pos })
	return g
}

// stronglyConnected computes SCCs of the lock-class graph (Tarjan,
// iteration order made deterministic by sorting) and returns each node's
// component id plus the members of each component.
func stronglyConnected(edges map[[2]string]lockEdge) (map[string]int, map[int][]string) {
	adj := make(map[string][]string)
	nodeSet := make(map[string]bool)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodeSet[key[0]], nodeSet[key[1]] = true, true
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, tos := range adj {
		sort.Strings(tos)
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	sccOf := make(map[string]int)
	sccMembers := make(map[int][]string)
	var stack []string
	next, nextSCC := 0, 0

	var strong func(v string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			id := nextSCC
			nextSCC++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = id
				sccMembers[id] = append(sccMembers[id], w)
				if w == v {
					break
				}
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return sccOf, sccMembers
}
