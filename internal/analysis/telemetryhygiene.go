package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// runTelemetry enforces the observability contract from DESIGN.md §8c:
// instrumented packages talk to the telemetry subsystem only through its
// nil-safe constructors and methods. Concretely, outside the telemetry
// package itself it forbids (1) composite literals and new() of
// telemetry types — a hand-rolled Span or Counter bypasses registration
// and the nil-receiver contract; (2) library (internal/) packages
// reaching for telemetry.Default(): metrics register through the
// package-level New* helpers, and only the serving binaries may touch
// the registry for exposition; (3) declaring a span as a value
// (telemetry.Span instead of *telemetry.Span) — nil-safety only exists
// behind the pointer.
func runTelemetry(p *Pass) {
	if !p.Cfg.instrumentedScope(p.Pkg) || p.Pkg.Path == p.Cfg.TelemetryPath {
		return
	}
	info := p.Pkg.Info
	fromTelemetry := func(t types.Type) bool { return typeFromPackage(t, p.Cfg.TelemetryPath) }
	libraryPkg := strings.Contains(p.Pkg.Path, "/internal/")
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if tv, ok := info.Types[x]; ok && fromTelemetry(tv.Type) {
					p.Reportf(x.Pos(),
						"telemetry values must come from the package constructors (StartSpan, Child, New*), not composite literals: a literal skips registration and the nil-safe contract")
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" && info.Uses[id] == types.Universe.Lookup("new") {
					if len(x.Args) == 1 {
						if tv, ok := info.Types[x.Args[0]]; ok && fromTelemetry(tv.Type) {
							p.Reportf(x.Pos(),
								"telemetry values must come from the package constructors (StartSpan, Child, New*), not new()")
						}
					}
				}
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && libraryPkg {
					if pkgPath, ok := selectorPackage(info, sel); ok && pkgPath == p.Cfg.TelemetryPath && sel.Sel.Name == "Default" {
						p.Reportf(x.Pos(),
							"library packages must not touch telemetry.Default(): register metrics with the package-level telemetry.New* helpers; only serving binaries read the registry")
					}
				}
			case *ast.Field:
				if tv, ok := info.Types[x.Type]; ok {
					if named, isNamed := tv.Type.(*types.Named); isNamed && fromTelemetry(named) && named.Obj().Name() == "Span" {
						p.Reportf(x.Type.Pos(),
							"telemetry.Span must be carried as *telemetry.Span: the no-op nil receiver and the shared child list only work behind the pointer")
					}
				}
			}
			return true
		})
	}
}
