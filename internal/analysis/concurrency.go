package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// runConcurrency enforces the repo's lock discipline: a Lock() that is
// not immediately deferred must not have an early return between it and
// its Unlock() (the classic leaked-lock bug), and struct fields whose
// comment declares "guarded by <mu>" may only be touched by methods that
// actually take that mutex (or are *Locked helpers whose caller holds
// it).
func runConcurrency(p *Pass) {
	if !p.Cfg.concurrencyScope(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		checkLockDiscipline(p, f)
	}
	checkGuardedFields(p)
}

// lockCall describes one mutex operation: the rendered receiver
// expression ("rt.mu") and whether it is a read lock.
type lockCall struct {
	recv string
	read bool
	call *ast.CallExpr
}

// asLockCall decodes stmt as a sync.Mutex/RWMutex Lock or RLock call.
func asLockCall(info *types.Info, stmt ast.Stmt) (lockCall, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return lockCall{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return lockCall{}, false
	}
	return asMutexOp(info, call, "Lock", "RLock")
}

// asMutexOp decodes call as one of the named methods on a sync mutex
// (directly or through embedding).
func asMutexOp(info *types.Info, call *ast.CallExpr, names ...string) (lockCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return lockCall{}, false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return lockCall{}, false
	}
	obj := selection.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	return lockCall{recv: renderExpr(sel.X), read: sel.Sel.Name[0] == 'R', call: call}, true
}

// checkLockDiscipline walks every function looking for Lock() calls that
// are neither immediately deferred nor straight-line paired with their
// Unlock().
func checkLockDiscipline(p *Pass, f *ast.File) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if n != body {
				// Nested function literals are visited on their own.
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
			}
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				lc, ok := asLockCall(info, stmt)
				if !ok {
					continue
				}
				if deferredUnlockFollows(info, block.List[i+1:], lc) {
					continue
				}
				reportLeakedLock(p, body, lc)
			}
			return true
		})
		return false
	})
}

// deferredUnlockFollows reports whether the statement immediately after
// the lock is `defer recv.Unlock()` (or RUnlock for a read lock).
func deferredUnlockFollows(info *types.Info, rest []ast.Stmt, lc lockCall) bool {
	if len(rest) == 0 {
		return false
	}
	def, ok := rest[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	want := "Unlock"
	if lc.read {
		want = "RUnlock"
	}
	op, ok := asMutexOp(info, def.Call, want)
	return ok && op.recv == lc.recv
}

// reportLeakedLock flags the lock when a return statement sits between
// it and the last matching manual unlock in the function body: on that
// return path the mutex is never released.
func reportLeakedLock(p *Pass, body *ast.BlockStmt, lc lockCall) {
	want := "Unlock"
	if lc.read {
		want = "RUnlock"
	}
	lastUnlock := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= lc.call.End() {
			return true
		}
		if op, ok := asMutexOp(p.Pkg.Info, call, want); ok && op.recv == lc.recv {
			if call.Pos() > lastUnlock {
				lastUnlock = call.Pos()
			}
		}
		return true
	})
	if lastUnlock == token.NoPos {
		// No unlock in this function at all: lock handoff across
		// functions is a deliberate (if rare) pattern; stay quiet.
		return
	}
	leaked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			if ret.Pos() > lc.call.End() && ret.Pos() < lastUnlock {
				leaked = true
			}
		}
		return true
	})
	if leaked {
		p.Reportf(lc.call.Pos(),
			"%s.%s is released manually but a return between it and %s.%s leaks the lock; use `defer %s.%s()`",
			lc.recv, lockName(lc), lc.recv, want, lc.recv, want)
	}
}

func lockName(lc lockCall) string {
	if lc.read {
		return "RLock"
	}
	return "Lock"
}

var guardedRE = regexp.MustCompile(`(?i)guarded by\s+([A-Za-z_][A-Za-z0-9_]*)`)

// guardedField is one struct field documented "guarded by <mu>".
type guardedField struct {
	structName string
	fieldName  string
	mutexName  string
	pos        token.Pos
}

// checkGuardedFields cross-references every `// guarded by mu` field
// comment against the methods of its struct: a method that touches the
// field without locking mu (and is not a *Locked helper) is reported.
func checkGuardedFields(p *Pass) {
	var guarded []guardedField
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				var m []string
				if field.Comment != nil {
					m = guardedRE.FindStringSubmatch(field.Comment.Text())
				}
				if m == nil && field.Doc != nil {
					m = guardedRE.FindStringSubmatch(field.Doc.Text())
				}
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					guarded = append(guarded, guardedField{
						structName: ts.Name.Name, fieldName: name.Name,
						mutexName: m[1], pos: name.Pos(),
					})
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}
	for _, fn := range p.Pkg.FuncDecls() {
		if fn.Body == nil || fn.Recv == nil {
			continue
		}
		recvType := receiverTypeName(fn)
		recvName := ""
		if len(fn.Recv.List[0].Names) > 0 {
			recvName = fn.Recv.List[0].Names[0].Name
		}
		if recvName == "" || recvName == "_" {
			continue
		}
		for _, g := range guarded {
			if g.structName != recvType {
				continue
			}
			checkGuardedAccess(p, fn, recvName, g)
		}
	}
}

// checkGuardedAccess reports unlocked accesses of one guarded field in
// one method.
func checkGuardedAccess(p *Pass, fn *ast.FuncDecl, recvName string, g guardedField) {
	if accessPos := fieldAccess(p, fn, recvName, g.fieldName); accessPos != token.NoPos {
		if methodLocks(p, fn, recvName, g.mutexName) {
			return
		}
		// The *Locked suffix is the repo's caller-holds-lock convention.
		if len(fn.Name.Name) > 6 && fn.Name.Name[len(fn.Name.Name)-6:] == "Locked" {
			return
		}
		p.Reportf(accessPos,
			"%s.%s is documented `guarded by %s` but method %s touches it without calling %s.%s.Lock/RLock (suffix the method `Locked` if the caller holds it)",
			g.structName, g.fieldName, g.mutexName, fn.Name.Name, recvName, g.mutexName)
	}
}

// fieldAccess returns the position of the first `recv.field` access in
// the method body, or NoPos.
func fieldAccess(p *Pass, fn *ast.FuncDecl, recvName, fieldName string) token.Pos {
	pos := token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != fieldName {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName {
			pos = sel.Pos()
			return false
		}
		return true
	})
	return pos
}

// methodLocks reports whether the body contains `recv.mu.Lock()` or
// `recv.mu.RLock()`.
func methodLocks(p *Pass, fn *ast.FuncDecl, recvName, muName string) bool {
	want := recvName + "." + muName
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := asMutexOp(p.Pkg.Info, call, "Lock", "RLock"); ok && op.recv == want {
			found = true
		}
		return true
	})
	return found
}
