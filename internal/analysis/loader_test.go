package analysis

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadModule loads every package of the enclosing module through one
// loader, the way bwc-vet and TestRepoIsClean do.
func loadModule(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{loader.ModuleRoot() + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return loader, pkgs
}

// TestLoadModuleGraph loads the whole module graph from source: every
// package type-checks, transitive module imports land in Loaded(), and
// the import relation is materialized (runtime's checked package really
// imports transport's). The CI test matrix runs this under each
// supported toolchain, so loader/stdlib drift across Go releases shows
// up here first.
func TestLoadModuleGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, pkgs := loadModule(t)
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; want the whole module", len(pkgs))
	}
	byPath := make(map[string]*Package)
	for _, pkg := range loader.Loaded() {
		byPath[pkg.Path] = pkg
	}
	rt := byPath["bwcluster/internal/runtime"]
	if rt == nil {
		t.Fatal("runtime package not in Loaded()")
	}
	imports := make(map[string]bool)
	for _, imp := range rt.Types.Imports() {
		imports[imp.Path()] = true
	}
	for _, want := range []string{"bwcluster/internal/transport", "bwcluster/internal/lockcheck"} {
		if !imports[want] {
			t.Errorf("runtime's type-checked imports lack %s", want)
		}
	}
}

// TestCheckedOncePerPackage pins the single-build property at the
// loader layer: loading every module dir explicitly type-checks each
// package exactly once, even though most are also reached again as
// transitive imports of later dirs.
func TestCheckedOncePerPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, _ := loadModule(t)
	if got, want := loader.Checked(), len(loader.Loaded()); got != want {
		t.Errorf("type-checked %d times for %d packages; the import cache is not shared", got, want)
	}
}

// TestLoaderRespectsBuildTags: the lockcheck-tagged shadow assertion
// must be excluded exactly like the compiler excludes it, or the
// package would declare Mutex twice and fail to type-check.
func TestLoaderRespectsBuildTags(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(loader.ModuleRoot(), "internal", "lockcheck"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		if strings.HasSuffix(loader.Fset.Position(f.Pos()).Filename, "lockcheck_on.go") {
			t.Error("lockcheck_on.go (a lockcheck-tagged file) was loaded into the default build")
		}
	}
	obj := pkg.Types.Scope().Lookup("Mutex")
	if obj == nil {
		t.Fatal("lockcheck.Mutex not found")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok || st.NumFields() != 1 || !st.Field(0).Embedded() {
		t.Errorf("default-build lockcheck.Mutex should embed sync.Mutex only, got %v", obj.Type().Underlying())
	}
}

// TestProgramBuiltOncePerRun is the SSA-cache regression test: one
// Analyze run with every interprocedural check enabled must build the
// whole-program function index exactly once, shared by lockorder,
// goroleak and protostate alike.
func TestProgramBuiltOncePerRun(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	_, pkgs := loadModule(t)
	before := ProgramBuilds()
	findings := Analyze(pkgs, DefaultConfig())
	if got := ProgramBuilds() - before; got != 1 {
		t.Errorf("Analyze built the function index %d times; want exactly 1 shared build", got)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
	// A second run gets its own program: the cache is per-run, not
	// global, so stale type information can never leak across runs.
	before = ProgramBuilds()
	Analyze(pkgs, DefaultConfig())
	if got := ProgramBuilds() - before; got != 1 {
		t.Errorf("second Analyze run built the index %d times; want 1 fresh build", got)
	}
}

// TestProgramNotBuiltWhenDisabled: with the interprocedural checks off,
// no Pass touches Prog(), so the lazy build must never run and the
// syntactic checks keep their old cost profile.
func TestProgramNotBuiltWhenDisabled(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(loader.ModuleRoot(), "internal", "metric"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, name := range []string{"lockorder", "goroleak", "protostate"} {
		cfg.Enabled[name] = false
	}
	before := ProgramBuilds()
	Analyze([]*Package{pkg}, cfg)
	if got := ProgramBuilds() - before; got != 0 {
		t.Errorf("disabled interprocedural checks still built the program %d times", got)
	}
}
