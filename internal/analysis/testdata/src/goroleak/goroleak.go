// Package goroleak is a bwc-vet fixture for the goroutine-leak check:
// every go statement needs a provable exit path in its call graph.
package goroleak

type server struct {
	stop chan struct{}
	in   chan int
}

func process(int) {}

// leakyLoop spawns a receive loop with no way out: the goroutine
// outlives whoever owns s.
func leakyLoop(s *server) {
	go func() { // want `never provably exits`
		for {
			process(<-s.in)
		}
	}()
}

// signalOnly drains its termination channel but never acts on it.
func signalOnly(s *server) {
	go func() { // want `receives a termination signal but never returns`
		for {
			select {
			case <-s.stop:
			case v := <-s.in:
				process(v)
			}
		}
	}()
}

// startDeep's leak is buried two calls down the spawned function.
func startDeep(s *server) {
	go s.deep() // want `never provably exits`
}

func (s *server) deep() { spin(s) }

func spin(s *server) {
	for {
		process(<-s.in)
	}
}

// startVar spawns a stored function value: the analyzer cannot see its
// body, so it cannot prove an exit path either.
func startVar(fn func()) {
	go fn() // want `cannot resolve`
}

// startClean is the sanctioned shape: a done-channel case that returns.
func startClean(s *server) {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case v := <-s.in:
				process(v)
			}
		}
	}()
}

// startNamed spawns a named worker whose loop exits through the
// termination channel.
func startNamed(s *server) {
	go s.run()
}

func (s *server) run() {
	for {
		select {
		case <-s.stop:
			return
		case v := <-s.in:
			process(v)
		}
	}
}

// pump ranges over the channel: it terminates when the owner closes
// s.in.
func pump(s *server) {
	go func() {
		for v := range s.in {
			process(v)
		}
	}()
}

// bounded is a worker with a conditional break: loops with a proven way
// out are assumed to terminate.
func bounded(jobs []int) {
	go func() {
		i := 0
		for {
			if i >= len(jobs) {
				return
			}
			process(jobs[i])
			i++
		}
	}()
}
