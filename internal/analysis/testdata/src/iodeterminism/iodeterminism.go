// Package iodeterminism is a bwc-vet fixture for the I/O-package scope
// of the determinism check: wall-clock reads are in charter for a
// transport (deadlines, reconnect backoff) and must stay silent, while
// the global math/rand stream and map-order leaks remain violations —
// an injected-fault schedule must be a pure function of its seed.
package iodeterminism

import (
	"math/rand"
	"time"
)

// backoffDeadline reads the wall clock for an I/O deadline: allowed in
// an I/O package, no finding.
func backoffDeadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}

// retryElapsed covers time.Since on the allowed side.
func retryElapsed(start time.Time, budget time.Duration) bool {
	return time.Since(start) > budget
}

// unseededJitter draws backoff jitter from the process-global stream:
// still forbidden — jitter must come from an explicit seeded source so
// fault schedules reproduce.
func unseededJitter(max int64) int64 {
	return rand.Int63n(max) // want `global rand\.Int63n`
}

// seededJitter is the sanctioned form: an explicit source.
func seededJitter(seed, max int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63n(max)
}

// flushOrder returns held-message ids in map iteration order: still
// forbidden in an I/O package — delivery order would differ run to run.
func flushOrder(held map[int]string) []int {
	var out []int
	for id := range held { // want `map iteration order leaks`
		out = append(out, id)
	}
	return out
}
