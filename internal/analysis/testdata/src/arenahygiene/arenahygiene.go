// Package arenahygiene is a bwc-vet fixture: flat hot-path packages keep
// node state in index-addressed arenas, not pointer-linked node webs or
// integer-keyed maps.
package arenahygiene

// treeNode is the classic pointer-linked node: parent and children
// pointers close a cycle through the type itself.
type treeNode struct {
	host     int
	parent   *treeNode   // want `pointer-connected node web`
	children []*treeNode // want `pointer-connected node web`
}

// edgeRec and vertexRec form a mutually recursive web: neither points at
// itself, but together they do.
type edgeRec struct {
	to *vertexRec // want `pointer-connected node web`
	w  float64
}

// vertexRec holds its outgoing edges by pointer.
type vertexRec struct {
	out []*edgeRec // want `pointer-connected node web`
}

// hostIndex keeps per-host state in integer-keyed maps: host IDs are
// small and dense, so these must be slices.
type hostIndex struct {
	leaf map[int]int      // want `dense slice`
	tv   map[int32]string // want `dense slice`
}

// flatTree is the arena shape the check wants: dense slices indexed by
// int32 node IDs. No findings here.
type flatTree struct {
	verts  []int32
	offset []float64
	names  []string
}

// build allocates one heap object per node — the pattern the arenas
// replace.
func build(n int) *treeNode {
	root := &treeNode{host: 0} // want `allocates treeNode`
	for i := 1; i < n; i++ {
		child := new(treeNode) // want `allocates treeNode`
		child.parent = root
		child.host = i
		root.children = append(root.children, child)
	}
	return root
}

// nameTable uses a transient integer-keyed map as a local: fine — only
// persistent (struct field) state is constrained.
func nameTable(t *flatTree) map[int32]string {
	out := make(map[int32]string, len(t.verts))
	for i, v := range t.verts {
		out[v] = t.names[i]
	}
	return out
}

// scanHot is marked as a hot path, so every allocation inside it is a
// contract violation: the address-of literal, the builtin new, and the
// map make all get flagged.
//
//bwcvet:hotpath per-tick fixture scan; allocation-free by contract
func scanHot(t *flatTree, buf []int32) []int32 {
	ft := &flatTree{}             // want `&-literal allocation inside //bwcvet:hotpath function scanHot`
	pt := new(flatTree)           // want `new\(\) allocation inside //bwcvet:hotpath function scanHot`
	idx := make(map[int32]int, 4) // want `make\(map\) allocation inside //bwcvet:hotpath function scanHot`
	_, _, _ = ft, pt, idx
	buf = buf[:0]
	for _, v := range t.verts {
		buf = append(buf, v)
	}
	return buf
}

// scanCold is unmarked: the same allocations are fine here (the web and
// map-field rules still apply elsewhere, but transient allocation in an
// ordinary function is not a finding).
func scanCold(t *flatTree) map[int32]int {
	idx := make(map[int32]int, len(t.verts))
	for i, v := range t.verts {
		idx[v] = i
	}
	return idx
}

var (
	_ = build
	_ = nameTable
	_ = scanHot
	_ = scanCold
	_ = hostIndex{}
	_ = flatTree{}
	_ = edgeRec{}
	_ = vertexRec{}
)
