// Package concurrency is a bwc-vet fixture for the lock-discipline
// check: leaked locks on early-return paths and guarded-by violations.
package concurrency

import (
	"errors"
	"sync"
)

type store struct {
	mu    sync.Mutex
	items map[int]string // guarded by mu

	statsMu sync.RWMutex
	hits    int // guarded by statsMu
}

// leakyGet unlocks manually but returns early between Lock and Unlock:
// the error path leaks the mutex.
func (s *store) leakyGet(k int) (string, error) {
	s.mu.Lock() // want `leaks the lock`
	v, ok := s.items[k]
	if !ok {
		return "", errors.New("missing")
	}
	s.mu.Unlock()
	return v, nil
}

// deferredGet is the sanctioned shape.
func (s *store) deferredGet(k int) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.items[k]
	return v, ok
}

// straightLine locks and unlocks with no return in between: fine, even
// without defer (the pattern used around wg.Wait handoffs).
func (s *store) straightLine(k int, v string) {
	s.mu.Lock()
	s.items[k] = v
	s.mu.Unlock()
}

// unlockedRead touches a guarded field without its mutex.
func (s *store) unlockedRead() int {
	return s.hits // want `guarded by statsMu`
}

// lockedRead takes the documented mutex: fine.
func (s *store) lockedRead() int {
	s.statsMu.RLock()
	defer s.statsMu.RUnlock()
	return s.hits
}

// bumpLocked follows the caller-holds-lock naming convention: exempt.
func (s *store) bumpLocked() {
	s.hits++
}
