// Package telemetryhygiene is a bwc-vet fixture: telemetry values must
// come from the nil-safe constructors, never literals, new() or raw
// indexing, and spans travel as pointers.
package telemetryhygiene

import (
	"bwcluster/internal/telemetry"
)

var goodCounter = telemetry.NewCounter("bwcvet_fixture_total", "fixture")

// literalSpan hand-rolls a Span, bypassing StartSpan.
func literalSpan() *telemetry.Span {
	s := &telemetry.Span{} // want `not composite literals`
	return s
}

// newSpan reaches for new() instead of the constructor.
func newSpan() *telemetry.Span {
	return new(telemetry.Span) // want `not new\(\)`
}

// goodSpan uses the constructor and the nil-safe child helper.
func goodSpan() *telemetry.Span {
	root := telemetry.StartSpan("fixture")
	child := root.Child("step")
	child.Finish()
	root.Finish()
	return root
}

// valueSpanHolder embeds a Span by value, defeating the nil-receiver
// contract.
type valueSpanHolder struct {
	span telemetry.Span // want `carried as \*telemetry\.Span`
}

// pointerSpanHolder is the correct shape.
type pointerSpanHolder struct {
	span *telemetry.Span
}

// record uses the constructor-produced counter: fine.
func record() {
	goodCounter.Inc()
}

// grabRegistry reaches for the process registry from library code.
func grabRegistry() *telemetry.Registry {
	return telemetry.Default() // want `must not touch telemetry\.Default`
}
