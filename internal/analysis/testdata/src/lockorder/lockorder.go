// Package lockorder is a bwc-vet fixture for the interprocedural
// lock-graph check: acquisition-order inversions (direct and through
// calls), reentrant acquisition, and blocking while a lock is held.
package lockorder

import (
	"sync"
	"time"
)

type node struct {
	mu    sync.Mutex
	value int
}

type edge struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	mu    sync.Mutex
	nodes map[int]*node
}

// abLock orders node.mu before edge.mu.
func abLock(a *node, b *edge) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-acquisition cycle`
	defer b.mu.Unlock()
	b.n++
}

// baLock orders them the other way: together with abLock this is the
// classic ABBA inversion.
func baLock(a *node, b *edge) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock-acquisition cycle`
	defer a.mu.Unlock()
	a.value++
}

// acquireViaHelper holds registry.mu across a call that takes node.mu:
// the edge is transitive, through the call graph.
func acquireViaHelper(r *registry, a *node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lockNode(a) // want `lock-acquisition cycle`
}

// lockNode takes node.mu on the caller's behalf.
func lockNode(a *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.value++
}

// nodeToRegistry inverts acquireViaHelper's transitive order.
func nodeToRegistry(r *registry, a *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r.mu.Lock() // want `lock-acquisition cycle`
	defer r.mu.Unlock()
	r.nodes[0] = a
}

// reacquire takes a lock class it already holds: sync mutexes are not
// reentrant, so this deadlocks against itself.
func reacquire(a *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mu.Lock() // want `already held`
	defer a.mu.Unlock()
}

// sendWhileLocked performs an unbuffered-send-shaped blocking operation
// with the lock held: every other goroutine contending for node.mu
// stalls until some receiver shows up.
func sendWhileLocked(a *node, ch chan int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ch <- a.value // want `potentially blocking channel send`
}

// sleepWhileLocked parks with the lock held.
func sleepWhileLocked(a *node) {
	a.mu.Lock()
	time.Sleep(time.Millisecond) // want `potentially blocking sleep`
	a.mu.Unlock()
}

// callBlockerWhileLocked reaches a blocking receive through a call chain
// while holding node.mu.
func callBlockerWhileLocked(a *node, ch chan int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	waitRecv(ch) // want `may block`
}

// waitRecv blocks until ch yields; harmless on its own.
func waitRecv(ch chan int) int { return <-ch }

// tryDrain is the sanctioned non-blocking shape: a select with a default
// never parks, even under the lock.
func tryDrain(a *node, ch chan int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	select {
	case v := <-ch:
		a.value = v
	default:
	}
}

// sendAfterUnlock releases before blocking: clean.
func sendAfterUnlock(a *node, ch chan int) {
	a.mu.Lock()
	v := a.value
	a.mu.Unlock()
	ch <- v
}
