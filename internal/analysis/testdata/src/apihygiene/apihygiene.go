// Package apihygiene is a bwc-vet fixture: exported identifiers need doc
// comments and context.Context goes first.
package apihygiene

import "context"

// Documented is an exported type with a doc comment: fine.
type Documented struct{}

type Undocumented struct{} // want `exported type Undocumented has no doc comment`

// DoDocumented carries a doc comment: fine.
func DoDocumented() {}

func DoUndocumented() {} // want `exported function DoUndocumented has no doc comment`

// Run takes its context first: fine.
func Run(ctx context.Context, n int) error { return ctx.Err() }

// RunLate buries the context mid-signature.
func RunLate(n int, ctx context.Context) error { return ctx.Err() } // want `context\.Context must be the first parameter`

// MaxHosts is documented: fine.
const MaxHosts = 64

const MinHosts = 2 // want `exported const MinHosts has no doc comment`

// Grouped declarations share the group doc: fine.
const (
	GroupedA = 1
	GroupedB = 2
)

// Method docs are required on exported methods of exported types.
func (Documented) Documented() {}

func (Documented) Missing() {} // want `exported method Documented\.Missing has no doc comment`

// unexported identifiers need no docs.
func helper() {}

var _ = helper
var _ = DoUndocumented
