// Package determinism is a bwc-vet fixture: each `want` marker is a line
// the determinism check must flag, everything else must stay silent.
package determinism

import (
	"math/rand"
	"sort"
	"time"

	"bwcluster/internal/telemetry"
)

var fixtureHist = telemetry.NewHistogram("bwcvet_fixture_seconds", "fixture", []float64{1})

// globalRand draws from the process-global stream: forbidden.
func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn`
}

// globalShuffle covers a second global entry point.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

// seededRand uses an explicit source: fine.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// wallClock reads time for algorithm-visible state: forbidden.
func wallClock() int64 {
	return time.Now().UnixNano() // want `wall clock \(time\.Now\)`
}

// wallClockSince covers time.Since outside telemetry.
func wallClockSince(t0 time.Time) bool {
	return time.Since(t0) > time.Second // want `wall clock \(time\.Since\)`
}

// telemetryTiming is the sanctioned idiom: the clock reads only feed a
// telemetry observation, never algorithm state.
func telemetryTiming(work func()) {
	start := time.Now()
	work()
	fixtureHist.Observe(time.Since(start).Seconds())
}

// mixedTiming reads the clock into a variable that leaks beyond
// telemetry: flagged even though one use is an observation.
func mixedTiming(work func()) int64 {
	start := time.Now() // want `wall clock \(time\.Now\)`
	work()
	fixtureHist.Observe(time.Since(start).Seconds())
	return start.UnixNano()
}

// keysUnsorted returns map keys in iteration order: forbidden.
func keysUnsorted(m map[int]string) []int {
	var out []int
	for k := range m { // want `map iteration order leaks`
		out = append(out, k)
	}
	return out
}

// keysSorted sorts before returning: fine.
func keysSorted(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// keysLocal never escapes: iteration order cannot leak.
func keysLocal(m map[int]string) int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	total := 0
	for _, k := range keys {
		total += k
	}
	return total
}

type holder struct {
	ids []int
}

// stashUnsorted stores map-ordered data in a field: forbidden.
func (h *holder) stashUnsorted(m map[int]bool) {
	for k := range m { // want `map iteration order leaks`
		h.ids = append(h.ids, k)
	}
}

// stashSorted stores the same data but sorts it first: fine.
func (h *holder) stashSorted(m map[int]bool) {
	for k := range m {
		h.ids = append(h.ids, k)
	}
	sort.Ints(h.ids)
}
