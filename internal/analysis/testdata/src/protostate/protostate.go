// Package protostate is a bwc-vet fixture for the wire-protocol state
// check: enum-switch exhaustiveness, wire-schema parity between Message
// and wireMessage, and clone completeness over reference fields.
package protostate

type kind uint8

const (
	kindPing kind = iota + 1
	kindPong
	kindData
)

// describe misses kindData and has no default: a new kind would fall
// through silently.
func describe(k kind) string {
	switch k { // want `not exhaustive: missing kindData`
	case kindPing:
		return "ping"
	case kindPong:
		return "pong"
	}
	return "unknown"
}

// handle covers every constant: clean.
func handle(k kind) int {
	switch k {
	case kindPing, kindPong:
		return 1
	case kindData:
		return 2
	}
	return 0
}

// route keeps an explicit default: the remainder is handled by design.
func route(k kind) int {
	switch k {
	case kindPing:
		return 1
	default:
		return 0
	}
}

type payload struct{ Body []byte }

// TraceContext rides only on traced frames; parity exempts it.
type TraceContext struct{ ID uint64 }

// Message is the fixture's protocol envelope.
type Message struct {
	Kind  kind
	From  int
	Data  *payload
	Acks  []int
	Trace *TraceContext
}

// wireMessage drops Acks: a payload field that would vanish on every
// lean frame.
type wireMessage struct { // want `missing non-trace Message field Acks`
	Kind kind
	From int
	Data *payload
}

// clone forgets the Data and Acks fields, so duplicated deliveries
// alias them.
func (m Message) clone() Message { // want `does not copy reference field`
	c := m
	if m.Trace != nil {
		tc := *m.Trace
		c.Trace = &tc
	}
	return c
}

// keep the otherwise-unused lean schema referenced.
var _ = wireMessage{}
