// Package directive is a bwc-vet fixture for the suppression-comment
// contract: a reasoned //bwcvet:allow silences exactly one line, and
// malformed directives are themselves findings.
package directive

import "time"

// suppressedSameLine carries a reasoned allow on the flagged line.
func suppressedSameLine() int64 {
	return time.Now().UnixNano() //bwcvet:allow determinism fixture: sanctioned wall-clock read
}

// suppressedLineAbove carries the allow on the preceding line.
func suppressedLineAbove() int64 {
	//bwcvet:allow determinism fixture: sanctioned wall-clock read
	return time.Now().UnixNano()
}

// wrongCheck names a check that does not fire here, so the finding
// survives.
func wrongCheck() int64 {
	return time.Now().UnixNano() //bwcvet:allow concurrency fixture: wrong check name // want `wall clock \(time\.Now\)`
}

// missingReason omits the mandatory reason.
func missingReason() int64 {
	//bwcvet:allow determinism // want `needs a reason`
	return time.Now().UnixNano() // want `wall clock \(time\.Now\)`
}

// unknownCheck names a check that does not exist.
func unknownCheck() int64 {
	//bwcvet:allow nosuchcheck because reasons // want `unknown check "nosuchcheck"`
	return time.Now().UnixNano() // want `wall clock \(time\.Now\)`
}
