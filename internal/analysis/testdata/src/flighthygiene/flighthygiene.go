// Package flighthygiene is a bwc-vet fixture: flight recorders arrive
// through explicit plumbing (never the process-wide default from
// library code), and event kinds are compile-time constants.
package flighthygiene

import (
	"fmt"

	"bwcluster/internal/telemetry"
)

const kindSend = "send"

// grabProcessRing reaches for the process-wide recorder from library
// code, making the black box untestable and unpluggable.
func grabProcessRing() *telemetry.FlightRecorder {
	return telemetry.FlightDefault() // want `must not touch telemetry\.FlightDefault`
}

// recordConst passes constant kinds: a package const and an untyped
// literal both keep the kind set enumerable.
func recordConst(r *telemetry.FlightRecorder) {
	r.Record(kindSend, 1, 2, "ok")
	r.Anomaly("reconnect_storm", 1, 2, "literal kinds are constants too")
}

// recordDynamic builds kinds at run time, exploding the set a
// post-mortem reader has to grep through.
func recordDynamic(r *telemetry.FlightRecorder, i int) {
	r.Record(fmt.Sprintf("kind-%d", i), 1, 2, "x") // want `compile-time constants`
	kind := "anomaly-" + fmt.Sprint(i)
	r.Anomaly(kind, 1, 2, "x") // want `compile-time constants`
}

// recordDetailDynamic varies only the detail argument: that is where
// run-time payload belongs.
func recordDetailDynamic(r *telemetry.FlightRecorder, i int) {
	r.Record(kindSend, 1, 2, fmt.Sprintf("attempt %d", i))
}
