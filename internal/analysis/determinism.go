package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runDeterminism enforces the seed-determinism invariant inside the
// algorithm packages: for a fixed seed every build and query must be
// bit-identical at any worker count, so algorithm code may not read wall
// clocks (except to feed telemetry), may not draw from the global
// math/rand stream (an explicit seeded *rand.Rand is required), and may
// not let map iteration order leak into a slice that escapes the
// function without being sorted first.
//
// I/O packages (Config.IOPackages) get the same check minus the
// wall-clock rule: a transport legitimately reads clocks for deadlines
// and reconnect backoff, but its injected-fault schedule must still be a
// pure function of an explicit seed, so the global-rand and
// map-order-leak rules stay in force.
func runDeterminism(p *Pass) {
	io := p.Cfg.ioScope(p.Pkg)
	if !io && !p.Cfg.algorithmScope(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		checkGlobalRand(p, f)
	}
	for _, fn := range p.Pkg.FuncDecls() {
		if fn.Body == nil {
			continue
		}
		if !io {
			checkWallClock(p, fn)
		}
		checkMapOrderLeak(p, fn)
	}
}

// randConstructors are the math/rand package-level functions that build
// an explicit source rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// checkGlobalRand flags calls to math/rand (and math/rand/v2) top-level
// functions other than the source constructors: Intn, Float64, Perm,
// Shuffle and friends all read the process-global stream, whose state
// depends on every other caller in the binary.
func checkGlobalRand(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := selectorPackage(p.Pkg.Info, sel)
		if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
			return true
		}
		if randConstructors[sel.Sel.Name] {
			return true
		}
		noun := "algorithm"
		if p.Cfg.ioScope(p.Pkg) {
			noun = "I/O"
		}
		p.Reportf(call.Pos(),
			"%s package calls global rand.%s; draw from an explicit seeded *rand.Rand so results are reproducible", noun, sel.Sel.Name)
		return true
	})
}

// checkWallClock flags time.Now and time.Since calls whose results do
// anything other than feed telemetry. A call is telemetry-exempt when it
// is lexically inside the arguments of a telemetry call, or when it
// initializes a variable whose every use flows into telemetry arguments
// (the `start := time.Now(); …; m.Observe(time.Since(start))` idiom).
func checkWallClock(p *Pass, fn *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := selectorPackage(info, sel)
		if !ok || pkgPath != "time" || (sel.Sel.Name != "Now" && sel.Sel.Name != "Since") {
			return true
		}
		if telemetrySunk(p, fn.Body, call) {
			return true
		}
		p.Reportf(call.Pos(),
			"algorithm package reads the wall clock (time.%s) outside a telemetry call site; clocks are nondeterministic across runs", sel.Sel.Name)
		return true
	})
}

// telemetrySunk reports whether the given time.Now/time.Since call only
// feeds telemetry within body.
func telemetrySunk(p *Pass, body *ast.BlockStmt, call *ast.CallExpr) bool {
	path := pathEnclosing(fileOf(p, call.Pos()), call.Pos())
	if insideTelemetryArgs(p, path, call) {
		return true
	}
	// `v := time.Now()`: exempt when every use of v is inside telemetry
	// arguments (directly or via time.Since(v)/x.Sub(v)).
	obj := assignedObject(p.Pkg.Info, path, call)
	if obj == nil {
		return false
	}
	used := false
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || p.Pkg.Info.Uses[id] != obj {
			return true
		}
		used = true
		upath := pathEnclosing(fileOf(p, id.Pos()), id.Pos())
		if !insideTelemetryArgs(p, upath, id) {
			ok = false
		}
		return true
	})
	return used && ok
}

// insideTelemetryArgs reports whether node sits inside the argument list
// of a call into the telemetry package (a package function like
// StartSpan, or a method on a telemetry-declared type like
// Histogram.Observe or Span.SetAttr). path is innermost-first.
func insideTelemetryArgs(p *Pass, path []ast.Node, node ast.Node) bool {
	for _, anc := range path {
		call, ok := anc.(*ast.CallExpr)
		if !ok || call == node {
			continue
		}
		inArgs := false
		for _, arg := range call.Args {
			if arg.Pos() <= node.Pos() && node.End() <= arg.End() {
				inArgs = true
				break
			}
		}
		if inArgs && isTelemetryCall(p, call) {
			return true
		}
	}
	return false
}

// isTelemetryCall reports whether call invokes the telemetry package —
// either one of its package-level functions or a method whose receiver
// type is declared there.
func isTelemetryCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkgPath, ok := selectorPackage(p.Pkg.Info, sel); ok {
		return pkgPath == p.Cfg.TelemetryPath
	}
	if selection, ok := p.Pkg.Info.Selections[sel]; ok {
		if named, ok := derefType(selection.Recv()).(*types.Named); ok {
			if tp := named.Obj().Pkg(); tp != nil && tp.Path() == p.Cfg.TelemetryPath {
				return true
			}
		}
	}
	return false
}

// assignedObject returns the object initialized from call when the
// innermost enclosing statement is `v := call` or `var v = call`, else
// nil. path is innermost-first.
func assignedObject(info *types.Info, path []ast.Node, call *ast.CallExpr) types.Object {
	for _, anc := range path {
		switch st := anc.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 && st.Rhs[0] == call {
				if id, ok := st.Lhs[0].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						return obj
					}
				}
			}
			return nil
		case *ast.ValueSpec:
			if len(st.Names) == 1 && len(st.Values) == 1 && st.Values[0] == call {
				return info.Defs[st.Names[0]]
			}
			return nil
		case *ast.BlockStmt, *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

// checkMapOrderLeak flags `for … range m` over a map whose body appends
// to a slice that escapes the function (returned, stored in a field or
// element, or package-level) without the function sorting that slice
// after the loop: the element order then depends on Go's randomized map
// iteration and differs run to run.
func checkMapOrderLeak(p *Pass, fn *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, tgt := range appendTargets(info, rng.Body) {
			if !escapes(info, fn, tgt) {
				continue
			}
			if sortedAfter(info, fn.Body, rng.End(), tgt) {
				continue
			}
			p.Reportf(rng.Pos(),
				"map iteration order leaks: range over map appends to %q, which escapes this function unsorted; sort it (or iterate sorted keys)", tgt.name)
		}
		return true
	})
}

// appendTarget is one `x = append(x, …)` destination found in a map
// range body.
type appendTarget struct {
	name string       // rendered name for diagnostics
	obj  types.Object // non-nil for plain identifiers
	sel  *ast.SelectorExpr
}

// appendTargets finds the distinct destinations of append calls in body.
func appendTargets(info *types.Info, body *ast.BlockStmt) []appendTarget {
	var out []appendTarget
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			if i >= len(asg.Lhs) {
				continue
			}
			switch lhs := asg.Lhs[i].(type) {
			case *ast.Ident:
				obj := info.Uses[lhs]
				if obj == nil {
					obj = info.Defs[lhs]
				}
				if obj != nil && !seen[obj] {
					seen[obj] = true
					out = append(out, appendTarget{name: lhs.Name, obj: obj})
				}
			case *ast.SelectorExpr:
				out = append(out, appendTarget{name: renderExpr(lhs), sel: lhs})
			}
		}
		return true
	})
	return out
}

// escapes reports whether the append target leaves the function: it is a
// field or element (selector), a package-level variable, a named result,
// or appears in a return statement.
func escapes(info *types.Info, fn *ast.FuncDecl, tgt appendTarget) bool {
	if tgt.sel != nil {
		return true
	}
	if tgt.obj == nil {
		return false
	}
	// Package-level variable.
	if tgt.obj.Parent() == tgt.obj.Pkg().Scope() {
		return true
	}
	// Named result parameter.
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			for _, name := range field.Names {
				if info.Defs[name] == tgt.obj {
					return true
				}
			}
		}
	}
	returned := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == tgt.obj {
					returned = true
				}
				return true
			})
		}
		return true
	})
	return returned
}

// sortedAfter reports whether, lexically after pos, the function calls a
// sort/slices sorting function with the target as an argument (or as the
// receiver slice of sort.Slice).
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, tgt appendTarget) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := selectorPackage(info, sel)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if argMatchesTarget(info, arg, tgt) {
				found = true
			}
		}
		return true
	})
	return found
}

func argMatchesTarget(info *types.Info, arg ast.Expr, tgt appendTarget) bool {
	switch a := arg.(type) {
	case *ast.Ident:
		return tgt.obj != nil && info.Uses[a] == tgt.obj
	case *ast.SelectorExpr:
		return tgt.sel != nil && renderExpr(a) == tgt.name
	}
	return false
}
