package bwcluster

import "testing"

// FuzzLoadBytes feeds arbitrary bytes to the system snapshot loader: it
// must reject anything that is not a valid snapshot without panicking.
func FuzzLoadBytes(f *testing.F) {
	// Seed with a real snapshot and mutations of it.
	bw := [][]float64{
		{0, 50, 40},
		{50, 0, 60},
		{40, 60, 0},
	}
	sys, err := New(bw, WithBandwidthClasses([]float64{30, 60}))
	if err != nil {
		f.Fatal(err)
	}
	blob, err := sys.SaveBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := LoadBytes(data)
		if err != nil {
			return
		}
		// Anything accepted must be a usable system.
		if restored.Len() < 2 {
			t.Fatalf("loader accepted a %d-host system", restored.Len())
		}
		if _, err := restored.PredictBandwidth(0, 1); err != nil {
			t.Fatalf("accepted system is unusable: %v", err)
		}
	})
}

// FuzzNewMatrixInput feeds adversarial bandwidth matrices to New.
func FuzzNewMatrixInput(f *testing.F) {
	f.Add(3, 10.0, 20.0)
	f.Add(2, 0.0, 5.0)
	f.Add(4, -3.0, 1e300)
	f.Fuzz(func(t *testing.T, n int, a, b float64) {
		if n < 0 || n > 12 {
			return
		}
		raw := make([][]float64, n)
		for i := range raw {
			raw[i] = make([]float64, n)
			for j := range raw[i] {
				if i == j {
					continue
				}
				if (i+j)%2 == 0 {
					raw[i][j] = a
				} else {
					raw[i][j] = b
				}
			}
		}
		sys, err := New(raw)
		if err != nil {
			return
		}
		if sys.Len() != n {
			t.Fatalf("system has %d hosts, want %d", sys.Len(), n)
		}
	})
}
