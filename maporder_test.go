package bwcluster_test

import (
	"bytes"
	"math/rand"
	"testing"

	"bwcluster"
	"bwcluster/internal/dataset"
)

// TestMapOrderDeterminism is the regression gate for the bwc-vet
// determinism invariant at system level: building the same seeded system
// twice in one process must produce bit-identical persisted state and
// identical query answers, even though every Go map involved iterates in
// a freshly randomized order on each run. Before prediction trees sorted
// their measured-pair set on encode, this test failed: the snapshot
// bytes depended on map iteration order.
func TestMapOrderDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topo, err := dataset.NewTopology(dataset.HPConfig().WithN(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := topo.Matrix(rng)
	if err != nil {
		t.Fatal(err)
	}
	bw := make([][]float64, m.N())
	for i := range bw {
		bw[i] = make([]float64, m.N())
		for j := range bw[i] {
			if i != j {
				bw[i][j] = m.Dist(i, j)
			}
		}
	}

	build := func() (*bwcluster.System, []byte) {
		sys, err := bwcluster.New(bw, bwcluster.WithSeed(11), bwcluster.WithParallelism(2))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := sys.SaveBytes()
		if err != nil {
			t.Fatal(err)
		}
		return sys, blob
	}

	sysA, blobA := build()
	sysB, blobB := build()

	if !bytes.Equal(blobA, blobB) {
		t.Fatalf("two builds with the same seed persisted different bytes (%d vs %d); map iteration order is leaking into the snapshot", len(blobA), len(blobB))
	}

	// Identical answers across the query surface, centralized and
	// decentralized.
	for _, k := range []int{3, 5, 8} {
		for _, b := range []float64{20, 50, 90} {
			mA, errA := sysA.FindCluster(k, b)
			mB, errB := sysB.FindCluster(k, b)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("FindCluster(%d, %v): error mismatch: %v vs %v", k, b, errA, errB)
			}
			if !equalInts(mA, mB) {
				t.Fatalf("FindCluster(%d, %v): %v vs %v", k, b, mA, mB)
			}
			rA, errA := sysA.Query(0, k, b)
			rB, errB := sysB.Query(0, k, b)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("Query(0, %d, %v): error mismatch: %v vs %v", k, b, errA, errB)
			}
			if !equalInts(rA.Members, rB.Members) || rA.Hops != rB.Hops || rA.AnsweredBy != rB.AnsweredBy || rA.Class != rB.Class {
				t.Fatalf("Query(0, %d, %v): %+v vs %+v", k, b, rA, rB)
			}
		}
	}

	// A reloaded system must answer like the one that saved it.
	loaded, err := bwcluster.LoadBytes(blobA)
	if err != nil {
		t.Fatal(err)
	}
	mA, _ := sysA.FindCluster(5, 50)
	mL, _ := loaded.FindCluster(5, 50)
	if !equalInts(mA, mL) {
		t.Fatalf("reloaded system diverges: %v vs %v", mA, mL)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
