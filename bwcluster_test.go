package bwcluster

import (
	"math/rand"
	"strings"
	"testing"

	"bwcluster/internal/dataset"
	"bwcluster/internal/metric"
)

// sampleBandwidth builds an n-host bandwidth matrix as [][]float64 via the
// synthetic generator.
func sampleBandwidth(t *testing.T, n int, seed int64) [][]float64 {
	t.Helper()
	bw, err := dataset.Generate(dataset.HPConfig().WithN(n), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i != j {
				out[i][j] = bw.At(i, j)
			}
		}
	}
	return out
}

func TestDefaultCMatchesInternal(t *testing.T) {
	if DefaultC != metric.DefaultC {
		t.Fatalf("public DefaultC %v diverged from internal %v", DefaultC, metric.DefaultC)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := New([][]float64{{0}}); err == nil {
		t.Error("single host should fail")
	}
	if _, err := New([][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := New([][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Error("zero bandwidth should fail")
	}
	good := [][]float64{{0, 10}, {10, 0}}
	bad := []Option{
		WithConstant(0),
		WithNCut(0),
		WithBandwidthClasses(nil),
		WithBandwidthClasses([]float64{-1}),
	}
	for i, opt := range bad {
		if _, err := New(good, opt); err == nil {
			t.Errorf("option %d should fail", i)
		}
	}
}

func TestBasicUsage(t *testing.T) {
	raw := sampleBandwidth(t, 40, 1)
	sys, err := New(raw, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 40 {
		t.Fatalf("Len = %d", sys.Len())
	}
	if sys.Constant() != DefaultC {
		t.Errorf("Constant = %v", sys.Constant())
	}
	if len(sys.Classes()) == 0 {
		t.Error("no default classes derived")
	}

	// Prediction is finite and positive for all pairs.
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			p, err := sys.PredictBandwidth(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if p <= 0 {
				t.Fatalf("predicted bandwidth (%d,%d) = %v", u, v, p)
			}
		}
	}

	// A loose centralized query must succeed and respect the constraint
	// on predicted bandwidth.
	classes := sys.Classes()
	b := classes[0]
	members, err := sys.FindCluster(4, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 {
		t.Fatalf("FindCluster returned %v", members)
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			p, err := sys.PredictBandwidth(members[i], members[j])
			if err != nil {
				t.Fatal(err)
			}
			if p < b*(1-1e-9) {
				t.Fatalf("pair (%d,%d) predicted %v < %v", members[i], members[j], p, b)
			}
		}
	}

	// Decentralized query from every host.
	for start := 0; start < sys.Len(); start += 7 {
		res, err := sys.Query(start, 4, b)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found() {
			t.Fatalf("decentralized query from %d failed", start)
		}
		if res.Class < b {
			t.Fatalf("snapped class %v below request %v", res.Class, b)
		}
		for i := 0; i < len(res.Members); i++ {
			for j := i + 1; j < len(res.Members); j++ {
				p, err := sys.PredictBandwidth(res.Members[i], res.Members[j])
				if err != nil {
					t.Fatal(err)
				}
				if p < res.Class*(1-1e-9) {
					t.Fatalf("pair predicted %v < class %v", p, res.Class)
				}
			}
		}
	}
}

func TestQuerySnapsUp(t *testing.T) {
	raw := sampleBandwidth(t, 25, 2)
	sys, err := New(raw, WithBandwidthClasses([]float64{20, 40, 80}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(0, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() && res.Class < 40-1e-9 {
		t.Errorf("b=30 should snap up to class 40, got %v", res.Class)
	}
	// A request above every class cannot be served conservatively.
	if _, err := sys.Query(0, 2, 500); err == nil {
		t.Error("constraint above all classes should fail")
	}
}

func TestHostValidation(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PredictBandwidth(0, 99); err == nil {
		t.Error("out-of-range host should fail")
	}
	if _, err := sys.PredictBandwidth(3, 3); err == nil {
		t.Error("self bandwidth should fail")
	}
	if _, err := sys.MeasuredBandwidth(-1, 0); err == nil {
		t.Error("negative host should fail")
	}
	if _, err := sys.Query(99, 3, 10); err == nil {
		t.Error("unknown start should fail")
	}
	if _, err := sys.Neighbors(99); err == nil {
		t.Error("unknown host should fail")
	}
	if _, err := sys.DistanceLabel(-5); err == nil {
		t.Error("unknown host should fail")
	}
	if _, err := sys.FindCluster(3, 0); err == nil {
		t.Error("b=0 should fail")
	}
	if _, err := sys.MaxClusterSize(-1); err == nil {
		t.Error("negative constraint should fail")
	}
}

func TestAsymmetricInputAveraged(t *testing.T) {
	raw := [][]float64{
		{0, 10, 30},
		{30, 0, 50},
		{50, 70, 0},
	}
	sys, err := New(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.MeasuredBandwidth(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("MeasuredBandwidth(0,1) = %v, want 20 (averaged)", got)
	}
}

func TestDistanceLabelAndNeighbors(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 15, 4))
	if err != nil {
		t.Fatal(err)
	}
	label, err := sys.DistanceLabel(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(label, "->") && !strings.Contains(label, "3") {
		t.Errorf("unexpected label %q", label)
	}
	nb, err := sys.Neighbors(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) == 0 {
		t.Error("host 3 has no overlay neighbors")
	}
}

func TestMaxClusterSizeMonotone(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 30, 5))
	if err != nil {
		t.Fatal(err)
	}
	prev := sys.Len() + 1
	for _, b := range []float64{5, 20, 80, 320} {
		size, err := sys.MaxClusterSize(b)
		if err != nil {
			t.Fatal(err)
		}
		if size > prev {
			t.Errorf("MaxClusterSize not monotone: %d after %d at b=%v", size, prev, b)
		}
		prev = size
	}
}

func TestCentralizedConstructionOption(t *testing.T) {
	raw := sampleBandwidth(t, 20, 6)
	a, err := New(raw, WithCentralizedConstruction(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	bSys, err := New(raw, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != bSys.Len() {
		t.Error("construction modes disagree on size")
	}
	// Both must answer a loose query.
	for _, sys := range []*System{a, bSys} {
		cl := sys.Classes()
		members, err := sys.FindCluster(3, cl[0])
		if err != nil {
			t.Fatal(err)
		}
		if members == nil {
			t.Error("loose query failed")
		}
	}
}

func TestTightestCluster(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 35, 9), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	members, worst, err := sys.TightestCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 5 {
		t.Fatalf("members = %v", members)
	}
	// The reported worst bandwidth is the minimum predicted bandwidth
	// inside the returned set (within the tree-metric identity).
	actual := 1e18
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			p, err := sys.PredictBandwidth(members[i], members[j])
			if err != nil {
				t.Fatal(err)
			}
			if p < actual {
				actual = p
			}
		}
	}
	if actual < worst*(1-1e-9) {
		t.Errorf("achieved worst %v below reported %v", actual, worst)
	}
	// No other FindCluster at a higher constraint can exist.
	above, err := sys.FindCluster(5, worst*1.02)
	if err != nil {
		t.Fatal(err)
	}
	if above != nil {
		// Permissible only if that cluster's real worst predicted pair is
		// still >= worst (tree-metric identity may be loose on noise).
		w := 1e18
		for i := 0; i < len(above); i++ {
			for j := i + 1; j < len(above); j++ {
				p, _ := sys.PredictBandwidth(above[i], above[j])
				if p < w {
					w = p
				}
			}
		}
		if w < worst*(1-0.05) {
			t.Errorf("found looser cluster (worst %v) above the optimum %v", w, worst)
		}
	}
	if _, _, err := sys.TightestCluster(1); err == nil {
		t.Error("k=1 should fail")
	}
	big, _, err := sys.TightestCluster(sys.Len() + 1)
	if err != nil {
		t.Fatal(err)
	}
	if big != nil {
		t.Error("k > n should return nil")
	}
}

func TestFindNodeForSet(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 40, 8), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	classes := sys.Classes()
	b := classes[0]
	members, err := sys.FindCluster(5, b)
	if err != nil || members == nil {
		t.Fatalf("setup cluster: %v %v", members, err)
	}
	set := members[:3]
	res, err := sys.FindNodeForSet(set, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("no node found for a loose constraint")
	}
	for _, m := range set {
		if res.Node == m {
			t.Fatalf("returned node %d is in the input set", res.Node)
		}
		p, err := sys.PredictBandwidth(res.Node, m)
		if err != nil {
			t.Fatal(err)
		}
		if p < b*(1-1e-9) {
			t.Fatalf("node %d predicted %v Mbps to member %d (< %v)", res.Node, p, m, b)
		}
	}
	if res.WorstBandwidth < b*(1-1e-9) {
		t.Errorf("WorstBandwidth %v below constraint %v", res.WorstBandwidth, b)
	}

	// Decentralized variant from several starts.
	for start := 0; start < sys.Len(); start += 9 {
		nres, err := sys.QueryNode(start, set, b)
		if err != nil {
			t.Fatal(err)
		}
		if !nres.Found() {
			continue // heuristic may miss with small n_cut
		}
		for _, m := range set {
			p, _ := sys.PredictBandwidth(nres.Node, m)
			if p < b*(1-1e-9) {
				t.Fatalf("decentralized node %d predicted %v to %d (< %v)", nres.Node, p, m, b)
			}
		}
	}

	// Validation paths.
	if _, err := sys.FindNodeForSet([]int{999}, b); err == nil {
		t.Error("out-of-range member should fail")
	}
	if _, err := sys.FindNodeForSet(set, 0); err == nil {
		t.Error("b=0 should fail")
	}
	if _, err := sys.QueryNode(999, set, b); err == nil {
		t.Error("unknown start should fail")
	}
	if _, err := sys.QueryNode(0, set, -1); err == nil {
		t.Error("negative constraint should fail")
	}
	// Impossible constraint yields not-found, not an error.
	impossible, err := sys.FindNodeForSet(set, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if impossible.Found() {
		t.Error("1e9 Mbps constraint should find nothing")
	}
}

func TestRoutingTable(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 25, 15), WithBandwidthClasses([]float64{15, 30, 60}))
	if err != nil {
		t.Fatal(err)
	}
	self, entries, err := sys.RoutingTable(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(self) != 3 {
		t.Fatalf("self CRT has %d classes, want 3", len(self))
	}
	// Aligned with ascending bandwidth classes: tighter constraints can
	// only shrink the max cluster size.
	for i := 1; i < len(self); i++ {
		if self[i] > self[i-1] {
			t.Fatalf("self CRT not monotone non-increasing in bandwidth: %v", self)
		}
	}
	nb, err := sys.Neighbors(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(nb) {
		t.Fatalf("entries = %d, neighbors = %d", len(entries), len(nb))
	}
	for _, e := range entries {
		if len(e.MaxSizes) != 3 {
			t.Fatalf("entry %+v has %d classes", e, len(e.MaxSizes))
		}
		for i := 1; i < len(e.MaxSizes); i++ {
			if e.MaxSizes[i] > e.MaxSizes[i-1] {
				t.Fatalf("CRT via %d not monotone: %v", e.Neighbor, e.MaxSizes)
			}
		}
	}
	if _, _, err := sys.RoutingTable(99); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestSystemStats(t *testing.T) {
	sys, err := New(sampleBandwidth(t, 25, 14), WithTrees(2))
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Hosts != 25 || st.Trees != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Measurements <= 0 {
		t.Error("no measurements recorded")
	}
	// Construction must measure fewer pairs than full n-to-n per tree.
	if full := 25 * 24 / 2 * 2 /* both directions */ * 2; /* trees */ st.Measurements >= full*3 {
		t.Errorf("measurements %d suspiciously high (full n-to-n x trees = %d)", st.Measurements, full)
	}
	if st.GossipRounds <= 0 || st.GossipMessages <= 0 {
		t.Errorf("gossip stats empty: %+v", st)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	raw := sampleBandwidth(t, 20, 7)
	a, err := New(raw, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(raw, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			pa, _ := a.PredictBandwidth(u, v)
			pb, _ := b.PredictBandwidth(u, v)
			if pa != pb {
				t.Fatalf("non-deterministic prediction at (%d,%d)", u, v)
			}
		}
	}
}
